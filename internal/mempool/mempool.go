// Package mempool is the sharded, admission-controlled transaction
// pool that fronts the miner under open ingest. It replaces
// txpool.Pool on the node's intake side while preserving the selection
// contract the miner and pipeline depend on: SelectBatch/RequeueBatch
// merge by a global arrival sequence, all three selection policies
// (fifo, spread, lockhint) pick from the same window scans as the
// single-lock pool (txpool.SelectWindow), and a requeued batch lands
// back at exactly its original arrival position.
//
// Layout: pending transactions are sharded by sender-address hash (an
// FNV-1a of the address bytes — deterministic across runs, so a replayed
// admission sequence shards identically), each shard guarded by its own
// mutex, with one global atomic arrival sequence. Per-shard queues are
// kept sorted by (priority desc, seq asc): with every priority equal —
// the trusted-path default — that degenerates to pure arrival order,
// which is how the existing miner tests pass unmodified; with priority
// lanes in use, SelectBatch's cross-shard merge yields higher lanes
// first and FIFO-by-arrival within a lane.
//
// Two intake paths exist. SubmitTrusted/SubmitAllTrusted bypass
// admission entirely — they serve the node's own traffic (workload
// batches, WAL restart restore) which may legitimately contain
// byte-identical calls (a double-vote pair is two distinct ballot
// transactions). Admit runs the ordered admission pipeline (see
// admission.go) and is the /v1 ingest path.
package mempool

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"contractstm/internal/contract"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

// entry is one pooled transaction. The embedded txpool.Entry carries
// the call and the lock-hint cache the shared window scans fill.
type entry struct {
	txpool.Entry
	seq      int64
	id       types.Hash
	sender   types.Address
	priority uint8
	size     int64
}

// entryBefore is the per-shard queue order: priority lanes first,
// arrival order within a lane. Seqs are globally unique, so the order
// is total.
func entryBefore(a, b *entry) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// senderState is one sender's admission bookkeeping within a shard:
// occupancy (slots, bytes) and the token bucket. States are pruned
// once the sender has no queued entries and a full bucket — an idle
// sender costs nothing, but a draining bucket is retained so a flooder
// cannot reset its rate limit by letting its queue empty.
type senderState struct {
	entries []*entry
	bytes   int64
	bucket  tokenBucket
}

// shard is one lock stripe of the pool.
type shard struct {
	mu      sync.Mutex
	queue   []*entry // sorted by entryBefore
	known   map[types.Hash]int
	senders map[types.Address]*senderState
	bytes   int64
	// admitsSincePrune triggers the idle-sender sweep (see pruneIdle).
	admitsSincePrune int
}

// Pool is the sharded mempool. It is safe for concurrent use; Submit
// paths touch one shard, selection paths lock all shards in index
// order.
type Pool struct {
	cfg    Config
	shards []*shard
	// perShardBytes partitions Config.MaxBytes evenly across shards:
	// eviction is local to the admitting shard, so no admission ever
	// needs two shard locks (no lock-order hazards). 0 = unlimited.
	perShardBytes int64

	nextSeq atomic.Int64
	count   atomic.Int64
	bytes   atomic.Int64

	// scoreMu guards scores. Lock order: shard locks (ascending) before
	// scoreMu; ReportConflicts paths take scoreMu alone.
	scoreMu sync.Mutex
	scores  txpool.Scores

	stats stats
}

// New returns an empty pool with cfg's limits (zero values are
// permissive; see Config).
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, scores: txpool.NewScores()}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		p.shards[i] = &shard{
			known:   make(map[types.Hash]int),
			senders: make(map[types.Address]*senderState),
		}
	}
	if cfg.MaxBytes > 0 {
		p.perShardBytes = cfg.MaxBytes / int64(cfg.Shards)
		if p.perShardBytes < 1 {
			p.perShardBytes = 1
		}
	}
	return p
}

// shardFor maps a sender to its shard by FNV-1a over the address
// bytes. Deterministic by design: two pools fed the same sequence of
// admissions make identical shard placements, hence identical
// occupancy verdicts.
func (p *Pool) shardFor(sender types.Address) *shard {
	h := uint64(14695981039346656037)
	for _, b := range sender {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return p.shards[h%uint64(len(p.shards))]
}

// txIDOf derives the content-addressed transaction ID — the same
// derivation the wire layer uses (wire.TxIDOf), duplicated here so the
// pool does not depend on the API packages.
func txIDOf(c contract.Call) (types.Hash, int64) {
	enc := c.EncodeForHash()
	return types.HashBytes(enc), int64(len(enc))
}

// newEntry builds a pool entry for a call, assigning the next global
// arrival sequence.
func (p *Pool) newEntry(c contract.Call, priority uint8) *entry {
	id, size := txIDOf(c)
	return &entry{
		Entry:    txpool.Entry{Call: c},
		seq:      p.nextSeq.Add(1) - 1,
		id:       id,
		sender:   c.Sender,
		priority: priority,
		size:     size,
	}
}

// insertLocked places e into the shard queue at its (priority, seq)
// position and updates every occupancy counter. Caller holds s.mu.
func (p *Pool) insertLocked(s *shard, e *entry) {
	i := sort.Search(len(s.queue), func(i int) bool { return entryBefore(e, s.queue[i]) })
	s.queue = append(s.queue, nil)
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = e
	s.known[e.id]++
	ss := s.senders[e.sender]
	if ss == nil {
		ss = &senderState{}
		s.senders[e.sender] = ss
	}
	ss.entries = append(ss.entries, e)
	ss.bytes += e.size
	s.bytes += e.size
	p.count.Add(1)
	p.bytes.Add(e.size)
}

// removeLocked unlinks e from the shard queue and reverses every
// occupancy counter. Caller holds s.mu; e must be queued in s.
func (p *Pool) removeLocked(s *shard, e *entry) {
	i := sort.Search(len(s.queue), func(i int) bool { return !entryBefore(s.queue[i], e) })
	for i < len(s.queue) && s.queue[i] != e {
		i++ // duplicates share (priority, seq) never — seqs are unique — but be safe
	}
	if i == len(s.queue) {
		return
	}
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	p.forgetLocked(s, e)
}

// forgetLocked reverses e's occupancy accounting without touching the
// queue slice — selection compacts queues wholesale and calls this per
// removed entry.
func (p *Pool) forgetLocked(s *shard, e *entry) {
	if n := s.known[e.id] - 1; n <= 0 {
		delete(s.known, e.id)
	} else {
		s.known[e.id] = n
	}
	if ss := s.senders[e.sender]; ss != nil {
		for j, se := range ss.entries {
			if se == e {
				ss.entries = append(ss.entries[:j], ss.entries[j+1:]...)
				break
			}
		}
		ss.bytes -= e.size
		if len(ss.entries) == 0 && ss.bucket.full(p.cfg) {
			delete(s.senders, e.sender)
		}
	}
	s.bytes -= e.size
	p.count.Add(-1)
	p.bytes.Add(-e.size)
}

// SubmitTrusted enqueues a call from the node's own intake (priority
// 0), bypassing admission control: no dedup, no caps, no budget. The
// trusted path must accept byte-identical calls — workload batches
// legitimately contain them.
func (p *Pool) SubmitTrusted(call contract.Call) {
	e := p.newEntry(call, 0)
	s := p.shardFor(e.sender)
	s.mu.Lock()
	p.insertLocked(s, e)
	s.mu.Unlock()
}

// SubmitAllTrusted enqueues calls in order, atomically with respect to
// selection: all shard locks are held while the batch lands, so a
// concurrent SelectBatch can never observe a prefix of the batch —
// the same guarantee txpool.SubmitAll gives under its single lock.
func (p *Pool) SubmitAllTrusted(calls []contract.Call) {
	p.lockAll()
	defer p.unlockAll()
	for _, c := range calls {
		e := p.newEntry(c, 0)
		p.insertLocked(p.shardFor(e.sender), e)
	}
}

func (p *Pool) lockAll() {
	for _, s := range p.shards {
		s.mu.Lock()
	}
}

func (p *Pool) unlockAll() {
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
}

// Selection is a selected batch plus the bookkeeping to return it to
// its original arrival position, mirroring txpool.Selection for the
// sharded pool. Entries retain their seq, priority and accounting
// identity, so RequeueBatch restores them exactly.
type Selection struct {
	Calls   []contract.Call
	entries []*entry
}

// Len reports the selected call count.
func (s Selection) Len() int { return len(s.Calls) }

// SelectBatch removes and returns up to blockSize transactions under
// the policy, merging all shards into one (priority desc, seq asc)
// window — the exact window order a single-lock pool with the same
// entries would scan — and running the shared txpool window scan over
// it. Returns txpool.ErrEmpty when nothing is queued anywhere.
func (p *Pool) SelectBatch(policy txpool.Policy, blockSize int) (Selection, error) {
	if blockSize <= 0 {
		return Selection{}, errors.New("mempool: non-positive block size")
	}
	p.lockAll()
	defer p.unlockAll()
	total := 0
	for _, s := range p.shards {
		total += len(s.queue)
	}
	if total == 0 {
		return Selection{}, txpool.ErrEmpty
	}
	window := blockSize * p.cfg.WindowFactor
	if window > total {
		window = total
	}

	// K-way merge of the shard queue heads builds the window prefix of
	// the global order. heads[i] is shard i's next unmerged index; the
	// merged window entries are, per shard, a prefix of its queue.
	heads := make([]int, len(p.shards))
	winEntries := make([]*entry, 0, window)
	for len(winEntries) < window {
		best := -1
		for si, s := range p.shards {
			if heads[si] >= len(s.queue) {
				continue
			}
			if best < 0 || entryBefore(s.queue[heads[si]], p.shards[best].queue[heads[best]]) {
				best = si
			}
		}
		winEntries = append(winEntries, p.shards[best].queue[heads[best]])
		heads[best]++
	}

	win := make([]*txpool.Entry, len(winEntries))
	for i, e := range winEntries {
		win[i] = &e.Entry
	}
	p.scoreMu.Lock()
	idx := txpool.SelectWindow(policy, blockSize, win, &p.scores)
	p.scoreMu.Unlock()

	sel := Selection{
		Calls:   make([]contract.Call, len(idx)),
		entries: make([]*entry, len(idx)),
	}
	chosen := make(map[*entry]bool, len(idx))
	for i, wi := range idx {
		e := winEntries[wi]
		sel.Calls[i] = e.Call
		sel.entries[i] = e
		chosen[e] = true
	}

	// Compact each shard: the window covered queue prefix heads[si], and
	// the chosen entries are a subset of those prefixes.
	for si, s := range p.shards {
		if heads[si] == 0 {
			continue
		}
		kept := s.queue[:0]
		for i, e := range s.queue {
			if i < heads[si] && chosen[e] {
				p.forgetLocked(s, e)
				continue
			}
			kept = append(kept, e)
		}
		for i := len(kept); i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = kept
	}
	return sel, nil
}

// Select removes and returns up to blockSize calls (see SelectBatch).
func (p *Pool) Select(policy txpool.Policy, blockSize int) ([]contract.Call, error) {
	sel, err := p.SelectBatch(policy, blockSize)
	if err != nil {
		return nil, err
	}
	return sel.Calls, nil
}

// RequeueBatch returns a selected-but-unmined batch to the pool at its
// original arrival position: every entry keeps its original seq, so
// re-inserting restores the exact pre-selection global order no matter
// how many batches come back or in what order. Requeue is never
// rejected and never re-runs admission — the entries were already
// admitted once — so a requeued batch may transiently exceed byte or
// slot budgets; subsequent admissions see the restored occupancy and
// shed accordingly.
func (p *Pool) RequeueBatch(sel Selection) {
	if len(sel.entries) == 0 {
		return
	}
	p.lockAll()
	defer p.unlockAll()
	for _, e := range sel.entries {
		p.insertLocked(p.shardFor(e.sender), e)
	}
}

// Len reports queued transactions across all shards.
func (p *Pool) Len() int { return int(p.count.Load()) }

// Bytes reports the pool's encoded-byte footprint.
func (p *Pool) Bytes() int64 { return p.bytes.Load() }

// PendingCalls returns every queued call in global arrival (seq)
// order: the persistence layer saves these on shutdown, and a
// restarted node re-submits them through the trusted path in the same
// order. Priorities are intake-side quality-of-service state, not
// consensus state, and are deliberately not persisted — a restart
// flattens every survivor back to the arrival lane.
func (p *Pool) PendingCalls() []contract.Call {
	p.lockAll()
	defer p.unlockAll()
	all := make([]*entry, 0, p.count.Load())
	for _, s := range p.shards {
		all = append(all, s.queue...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]contract.Call, len(all))
	for i, e := range all {
		out[i] = e.Call
	}
	return out
}

// ReportConflicts feeds back retried transactions from a mined block
// (see txpool.Pool.ReportConflicts).
func (p *Pool) ReportConflicts(calls []contract.Call) {
	p.scoreMu.Lock()
	defer p.scoreMu.Unlock()
	p.scores.AddConflicts(calls)
}

// ReportConflictPairs feeds back conflict pairs from a mined block
// (see txpool.Pool.ReportConflictPairs).
func (p *Pool) ReportConflictPairs(pairs [][2]contract.Call) {
	p.scoreMu.Lock()
	defer p.scoreMu.Unlock()
	p.scores.AddConflictPairs(pairs)
}
