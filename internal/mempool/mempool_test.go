package mempool

import (
	"reflect"
	"testing"
	"time"

	"contractstm/internal/contract"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

// testCall builds a transfer-shaped call; distinct (sender, nonce)
// pairs give distinct content-derived TxIDs, identical pairs give
// byte-identical calls. The nonce rides in the amount argument so
// tests can read it back from a drained call.
func testCall(sender, nonce uint64) contract.Call {
	return contract.Call{
		Sender:   types.AddressFromUint64(0xA000 + sender),
		Contract: types.AddressFromUint64(0xC0DE),
		Function: "transfer",
		Args:     []any{types.AddressFromUint64(0x7000 + nonce), nonce},
		GasLimit: 100_000,
	}
}

// TestTrustedSelectionParity drains the same submissions through the
// sharded pool and the single-lock txpool under every policy and
// requires identical block sequences: the sharded merge plus the shared
// window scan must reproduce the single-lock selection exactly.
func TestTrustedSelectionParity(t *testing.T) {
	for _, policy := range []txpool.Policy{txpool.PolicyFIFO, txpool.PolicySpread, txpool.PolicyLockHint} {
		t.Run(policy.String(), func(t *testing.T) {
			mp := New(Config{Shards: 8})
			tp := txpool.New()
			var calls []contract.Call
			for i := 0; i < 100; i++ {
				calls = append(calls, testCall(uint64(i%17), uint64(i)))
			}
			for _, c := range calls {
				mp.SubmitTrusted(c)
				tp.Submit(c)
			}
			// The same conflict feedback on both sides, so the score-driven
			// policies defer the same function groups.
			mp.ReportConflicts(calls[:10])
			tp.ReportConflicts(calls[:10])

			for block := 0; ; block++ {
				ms, merr := mp.SelectBatch(policy, 16)
				ts, terr := tp.SelectBatch(policy, 16)
				if (merr == nil) != (terr == nil) {
					t.Fatalf("block %d: mempool err %v, txpool err %v", block, merr, terr)
				}
				if merr != nil {
					break
				}
				if !reflect.DeepEqual(ms.Calls, ts.Calls) {
					t.Fatalf("block %d: selections diverge\nmempool: %v\ntxpool:  %v", block, ms.Calls, ts.Calls)
				}
			}
			if mp.Len() != 0 {
				t.Fatalf("mempool not drained: %d left", mp.Len())
			}
		})
	}
}

// TestRequeueRestoresArrivalOrder returns two selections out of order
// and requires the pool's global order to be exactly the original
// arrival order — the merge contract MinePipelined's abort path depends
// on.
func TestRequeueRestoresArrivalOrder(t *testing.T) {
	mp := New(Config{Shards: 4})
	var want []contract.Call
	for i := 0; i < 30; i++ {
		c := testCall(uint64(i), uint64(i))
		want = append(want, c)
		mp.SubmitTrusted(c)
	}
	sel1, err := mp.SelectBatch(txpool.PolicyFIFO, 10)
	if err != nil {
		t.Fatalf("select 1: %v", err)
	}
	sel2, err := mp.SelectBatch(txpool.PolicyFIFO, 10)
	if err != nil {
		t.Fatalf("select 2: %v", err)
	}
	mp.RequeueBatch(sel2) // deliberately out of order
	mp.RequeueBatch(sel1)
	if got := mp.PendingCalls(); !reflect.DeepEqual(got, want) {
		t.Fatalf("arrival order not restored\ngot:  %v\nwant: %v", got, want)
	}
}

func TestAdmitDedupAndReadmitAfterDrain(t *testing.T) {
	p := New(Config{Shards: 4})
	c := testCall(1, 1)
	if d := p.Admit(c, 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("first admit: %v", d.Verdict)
	}
	d := p.Admit(c, 0)
	if d.Verdict != VerdictDuplicate {
		t.Fatalf("second admit: %v, want duplicate", d.Verdict)
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d after duplicate", p.Len())
	}
	if _, err := p.SelectBatch(txpool.PolicyFIFO, 10); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Once selected the ID leaves the dedup set: a resubmission is a new
	// transaction again (the node layer's receipt check owns longer-term
	// dedup).
	if d := p.Admit(c, 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("re-admit after drain: %v", d.Verdict)
	}
	st := p.Stats()
	if st.Admitted != 2 || st.Duplicate != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateLimitRefillsOnInjectedClock(t *testing.T) {
	now := time.Unix(1000, 0)
	p := New(Config{Shards: 1, RatePerSec: 1, Burst: 2, Now: func() time.Time { return now }})
	if d := p.Admit(testCall(1, 1), 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("burst 1: %v", d.Verdict)
	}
	if d := p.Admit(testCall(1, 2), 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("burst 2: %v", d.Verdict)
	}
	d := p.Admit(testCall(1, 3), 0)
	if d.Verdict != VerdictRateLimited {
		t.Fatalf("over burst: %v", d.Verdict)
	}
	if d.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s at rate 1/s", d.RetryAfter)
	}
	now = now.Add(time.Second)
	if d := p.Admit(testCall(1, 3), 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("after refill: %v", d.Verdict)
	}
	// A different sender was never throttled.
	if d := p.Admit(testCall(2, 1), 0); d.Verdict != VerdictAdmitted {
		t.Fatalf("other sender: %v", d.Verdict)
	}
}

func TestSenderSlotsAndPriorityReplacement(t *testing.T) {
	p := New(Config{Shards: 1, PerSenderSlots: 2})
	c1, c2, c3 := testCall(1, 1), testCall(1, 2), testCall(1, 3)
	p.Admit(c1, 0)
	p.Admit(c2, 0)
	if d := p.Admit(c3, 0); d.Verdict != VerdictSenderLimit {
		t.Fatalf("at cap, equal priority: %v", d.Verdict)
	}
	d := p.Admit(c3, 1)
	if d.Verdict != VerdictReplaced {
		t.Fatalf("at cap, higher priority: %v", d.Verdict)
	}
	if len(d.Dropped) != 1 || !reflect.DeepEqual(d.Dropped[0].Call, c2) {
		t.Fatalf("replacement victim = %+v, want the sender's newest queued call", d.Dropped)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2 (replacement keeps occupancy)", p.Len())
	}
	// The replacement jumped the lane: selection yields it first.
	sel, err := p.SelectBatch(txpool.PolicyFIFO, 1)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if !reflect.DeepEqual(sel.Calls[0], c3) {
		t.Fatalf("selected %v, want the priority-1 replacement", sel.Calls[0])
	}
}

func TestShardSaturationSheds(t *testing.T) {
	p := New(Config{Shards: 1, MaxShardEntries: 2})
	p.Admit(testCall(1, 1), 0)
	p.Admit(testCall(2, 2), 0)
	if d := p.Admit(testCall(3, 3), 0); d.Verdict != VerdictShardSaturated {
		t.Fatalf("verdict = %v, want shard_saturated", d.Verdict)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestByteBudgetEvictionAndOverload(t *testing.T) {
	// Probe one call's encoded size so the budget below holds exactly
	// three.
	probe := New(Config{Shards: 1})
	probe.Admit(testCall(0, 0), 0)
	size := probe.Bytes()
	if size <= 0 {
		t.Fatalf("probe size = %d", size)
	}

	first := testCall(0, 100)
	p := New(Config{Shards: 1, MaxBytes: 3 * size})
	p.Admit(first, 0)
	p.Admit(testCall(1, 101), 0)
	p.Admit(testCall(2, 102), 0)
	if p.Len() != 3 || p.Bytes() != 3*size {
		t.Fatalf("len=%d bytes=%d, want 3 calls filling the budget exactly", p.Len(), p.Bytes())
	}

	// Same lane: shed with zero collateral damage.
	d := p.Admit(testCall(9, 999), 0)
	if d.Verdict != VerdictPoolOverloaded || len(d.Dropped) != 0 {
		t.Fatalf("same-lane overflow: %v dropped=%d", d.Verdict, len(d.Dropped))
	}
	if p.Len() != 3 {
		t.Fatalf("shed submission evicted something: len=%d", p.Len())
	}

	// Higher lane: evicts the oldest lowest-lane entry and lands.
	d = p.Admit(testCall(9, 999), 1)
	if d.Verdict != VerdictAdmitted || len(d.Dropped) != 1 {
		t.Fatalf("higher-lane overflow: %v dropped=%d", d.Verdict, len(d.Dropped))
	}
	if !reflect.DeepEqual(d.Dropped[0].Call, first) {
		t.Fatalf("evicted %+v, want the oldest queued call", d.Dropped[0].Call)
	}
	if p.Len() != 3 || p.Bytes() != 3*size {
		t.Fatalf("after eviction len=%d bytes=%d", p.Len(), p.Bytes())
	}
	if st := p.Stats(); st.Evicted != 1 || st.PoolOverloaded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPriorityLanesSelectionOrder checks the merge order priority lanes
// buy: higher lanes first, arrival order within a lane — across shards.
func TestPriorityLanesSelectionOrder(t *testing.T) {
	p := New(Config{Shards: 4})
	a, b, c, d := testCall(1, 1), testCall(2, 2), testCall(3, 3), testCall(4, 4)
	p.Admit(a, 0)
	p.Admit(b, 5)
	p.Admit(c, 5)
	p.Admit(d, 1)
	sel, err := p.SelectBatch(txpool.PolicyFIFO, 10)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	want := []contract.Call{b, c, d, a}
	if !reflect.DeepEqual(sel.Calls, want) {
		t.Fatalf("selection order\ngot:  %v\nwant: %v", sel.Calls, want)
	}
	// Priorities are intake QoS, not consensus state: PendingCalls (the
	// persistence image) stays in arrival order.
	p.RequeueBatch(sel)
	if got := p.PendingCalls(); !reflect.DeepEqual(got, []contract.Call{a, b, c, d}) {
		t.Fatalf("pending order %v, want arrival order", got)
	}
}
