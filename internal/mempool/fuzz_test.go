package mempool

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"contractstm/internal/txpool"
)

// FuzzAdmissionDeterminism replays an arbitrary op sequence into two
// fresh pools and requires byte-identical outcomes: every admission
// verdict, every eviction set, the final stats and the final queue
// length. Admission is consensus-adjacent — its decisions choose which
// transactions can reach a block — so any hidden nondeterminism (map
// iteration, allocation-dependent tie-breaks) is a real bug, and this
// target exists to surface it.
//
// Encoding: each input byte is one op. Bytes with the top two bits set
// are a SelectBatch of size (b&0x0F)+1; anything else is an Admit with
// sender b&0x0F, priority (b>>4)&0x03, and a nonce cycling mod 7 so
// duplicate submissions occur naturally.
func FuzzAdmissionDeterminism(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x10, 0xC5, 0x01})
	f.Add(bytes.Repeat([]byte{0x07}, 40))                   // one sender hammering: slots + dedup
	f.Add([]byte{0x01, 0x11, 0x21, 0x31, 0xCF, 0x01, 0x31}) // admit/select/readmit
	f.Add(bytes.Repeat([]byte{0x00, 0x3F, 0xC1}, 20))

	cfg := Config{Shards: 4, PerSenderSlots: 2, MaxShardEntries: 6, MaxBytes: 2048}
	f.Fuzz(func(t *testing.T, ops []byte) {
		a := runOps(cfg, ops)
		b := runOps(cfg, ops)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same ops, different outcomes\nrun 1: %v\nrun 2: %v", a, b)
		}
	})
}

// runOps interprets the fuzz bytes against a fresh pool and returns a
// full trace of observable outcomes, cross-checked against a model of
// the expected queue length.
func runOps(cfg Config, ops []byte) []string {
	p := New(cfg)
	var trace []string
	wantLen := 0
	for i, b := range ops {
		if b&0xC0 == 0xC0 {
			sel, err := p.SelectBatch(txpool.PolicyFIFO, int(b&0x0F)+1)
			if err != nil {
				trace = append(trace, "select:empty")
				continue
			}
			wantLen -= sel.Len()
			trace = append(trace, fmt.Sprintf("select:%d", sel.Len()))
			continue
		}
		d := p.Admit(testCall(uint64(b&0x0F), uint64(i%7)), uint8(b>>4)&0x03)
		if d.Verdict.Admitted() {
			wantLen++
		}
		wantLen -= len(d.Dropped)
		ev := ""
		for _, dr := range d.Dropped {
			ev += ":" + dr.ID.String()
		}
		trace = append(trace, d.Verdict.String()+ev)
		if p.Len() != wantLen {
			trace = append(trace, fmt.Sprintf("LEN MISMATCH at op %d: pool %d, model %d", i, p.Len(), wantLen))
			return trace
		}
	}
	trace = append(trace, fmt.Sprintf("final:%d:%+v", p.Len(), p.Stats()))
	return trace
}
