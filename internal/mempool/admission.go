// Admission control: the ordered decision pipeline in front of the
// sharded pool. Every untrusted submission walks the same fixed stage
// order — duplicate check, rate limit, sender slots, shard occupancy,
// byte budget — so the verdict for any submission sequence is a pure
// function of the sequence and the config (the fuzz target exploits
// exactly that). Wall-clock time enters only through the injected
// Config.Now; with Now nil the rate limiter is off and decisions are
// fully deterministic.

package mempool

import (
	"sync/atomic"
	"time"

	"contractstm/internal/contract"
	"contractstm/internal/types"
)

// Config tunes the pool. The zero value of every limit is permissive
// (no cap) so a trusted-only deployment behaves like the single-lock
// pool; real limits are set by nodesrv flags and bench configs.
type Config struct {
	// Shards is the lock-stripe count (default 16). 1 degenerates to a
	// single-lock pool — the bench sweep compares exactly that.
	Shards int
	// WindowFactor bounds the selection window (window = factor *
	// blockSize), matching txpool's scan depth (default 4).
	WindowFactor int
	// PerSenderSlots caps queued transactions per sender; at the cap a
	// strictly-higher-priority submission replaces the sender's worst
	// queued entry (the nonce-slot replacement rule). 0 = unlimited.
	PerSenderSlots int
	// RatePerSec is the per-sender token-bucket refill rate; Burst is
	// the bucket depth (default 8 when a rate is set). RatePerSec 0 or
	// Now nil disables rate limiting.
	RatePerSec float64
	Burst      int
	// MaxBytes bounds the pool's total encoded-byte footprint,
	// partitioned evenly across shards; when the admitting shard's
	// partition is full, lowest-priority entries of the fattest senders
	// are evicted to make room — or the submission itself is shed when
	// nothing cheaper is queued. 0 = unlimited.
	MaxBytes int64
	// MaxShardEntries caps one shard's queue length (load shedding
	// before memory pressure). 0 = unlimited.
	MaxShardEntries int
	// Now supplies wall-clock time to the rate limiter. The pool never
	// reads the clock directly (it is consensus-adjacent code under the
	// walltime invariant); the node injects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.WindowFactor <= 0 {
		c.WindowFactor = 4
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	return c
}

// rateLimiting reports whether the token bucket is active.
func (c Config) rateLimiting() bool { return c.RatePerSec > 0 && c.Now != nil }

// Verdict is an admission decision.
type Verdict int

const (
	// VerdictAdmitted: queued.
	VerdictAdmitted Verdict = iota + 1
	// VerdictReplaced: queued by replacing the sender's lowest-priority
	// entry (sender was at its slot cap, submission had strictly higher
	// priority).
	VerdictReplaced
	// VerdictDuplicate: an identical transaction (same content-derived
	// TxID) is already queued in the pool.
	VerdictDuplicate
	// VerdictRateLimited: the sender's token bucket is empty.
	VerdictRateLimited
	// VerdictSenderLimit: the sender is at its slot cap and the
	// submission does not outrank any queued entry.
	VerdictSenderLimit
	// VerdictShardSaturated: the sender's shard is at MaxShardEntries.
	VerdictShardSaturated
	// VerdictPoolOverloaded: the shard's byte partition is full and the
	// submission outranks nothing evictable.
	VerdictPoolOverloaded
)

// String implements fmt.Stringer with the wire-stable reason names.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmitted:
		return "admitted"
	case VerdictReplaced:
		return "replaced"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictRateLimited:
		return "rate_limited"
	case VerdictSenderLimit:
		return "sender_limit"
	case VerdictShardSaturated:
		return "shard_saturated"
	case VerdictPoolOverloaded:
		return "pool_overloaded"
	default:
		return "verdict?"
	}
}

// Admitted reports whether the transaction is now queued.
func (v Verdict) Admitted() bool { return v == VerdictAdmitted || v == VerdictReplaced }

// Dropped is one transaction removed from the pool to make room —
// a replacement victim or a memory-pressure eviction. The node turns
// these into terminal evicted receipts.
type Dropped struct {
	ID   types.Hash
	Call contract.Call
}

// Decision is the full admission outcome for one submission.
type Decision struct {
	Verdict Verdict
	// TxID is the content-derived transaction ID (meaningful for every
	// verdict — a rejected submission still has an identity the client
	// can correlate).
	TxID types.Hash
	// RetryAfter is the pool's back-off hint for shed submissions
	// (rate-limit refill time; zero when the pool has no basis for an
	// estimate — the API layer clamps to its floor).
	RetryAfter time.Duration
	// Dropped lists transactions removed to admit this one.
	Dropped []Dropped
}

// tokenBucket is one sender's rate-limit state. Refill is lazy: tokens
// accrue on inspection from the elapsed time since the last top-up.
type tokenBucket struct {
	tokens float64
	last   time.Time
	primed bool
}

// take refills from the clock and consumes one token, reporting
// whether one was available and, if not, how long until one is. The
// token is consumed only on success — a shed submission must not also
// drain the sender's budget for its retry.
func (b *tokenBucket) take(cfg Config) (ok bool, wait time.Duration) {
	now := cfg.Now()
	burst := float64(cfg.Burst)
	if !b.primed {
		b.tokens, b.last, b.primed = burst, now, true
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * cfg.RatePerSec
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		deficit := 1 - b.tokens
		return false, time.Duration(deficit / cfg.RatePerSec * float64(time.Second))
	}
	b.tokens--
	return true, 0
}

// full reports whether the bucket is back at burst (or rate limiting
// is off) — the condition under which an empty sender state may be
// pruned without forgiving any spent budget.
func (b *tokenBucket) full(cfg Config) bool {
	if !cfg.rateLimiting() {
		return true
	}
	if !b.primed {
		return true
	}
	dt := cfg.Now().Sub(b.last)
	return b.tokens+dt.Seconds()*cfg.RatePerSec >= float64(cfg.Burst)
}

// stats are the pool's admission counters, atomics so Admit's hot path
// never takes a lock beyond its shard.
type stats struct {
	admitted       atomic.Int64
	replaced       atomic.Int64
	duplicate      atomic.Int64
	rateLimited    atomic.Int64
	senderLimit    atomic.Int64
	shardSaturated atomic.Int64
	poolOverloaded atomic.Int64
	evicted        atomic.Int64
}

// StatsSnapshot is a point-in-time read of the admission counters and
// occupancy, surfaced through GET /v1/status.
type StatsSnapshot struct {
	Admitted       int64 `json:"admitted"`
	Replaced       int64 `json:"replaced,omitempty"`
	Duplicate      int64 `json:"duplicate,omitempty"`
	RateLimited    int64 `json:"rateLimited,omitempty"`
	SenderLimit    int64 `json:"senderLimit,omitempty"`
	ShardSaturated int64 `json:"shardSaturated,omitempty"`
	PoolOverloaded int64 `json:"poolOverloaded,omitempty"`
	Evicted        int64 `json:"evicted,omitempty"`
	Len            int   `json:"len"`
	Bytes          int64 `json:"bytes"`
	ShardOccupancy []int `json:"shardOccupancy,omitempty"`
}

// Stats snapshots the admission counters and per-shard occupancy.
func (p *Pool) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Admitted:       p.stats.admitted.Load(),
		Replaced:       p.stats.replaced.Load(),
		Duplicate:      p.stats.duplicate.Load(),
		RateLimited:    p.stats.rateLimited.Load(),
		SenderLimit:    p.stats.senderLimit.Load(),
		ShardSaturated: p.stats.shardSaturated.Load(),
		PoolOverloaded: p.stats.poolOverloaded.Load(),
		Evicted:        p.stats.evicted.Load(),
		Len:            int(p.count.Load()),
		Bytes:          p.bytes.Load(),
		ShardOccupancy: make([]int, len(p.shards)),
	}
	for i, s := range p.shards {
		s.mu.Lock()
		snap.ShardOccupancy[i] = len(s.queue)
		s.mu.Unlock()
	}
	return snap
}

// pruneEvery is how many admissions on one shard trigger an
// idle-sender sweep.
const pruneEvery = 4096

// Admit runs the admission pipeline for one untrusted submission and,
// on success, queues it. The stage order is fixed and documented in
// DESIGN.md; changing it changes the decision table the fuzz target
// locks down.
func (p *Pool) Admit(call contract.Call, priority uint8) Decision {
	id, size := txIDOf(call)
	s := p.shardFor(call.Sender)
	s.mu.Lock()
	d := p.admitLocked(s, call, priority, id, size)
	s.mu.Unlock()

	switch d.Verdict {
	case VerdictAdmitted:
		p.stats.admitted.Add(1)
	case VerdictReplaced:
		p.stats.replaced.Add(1)
	case VerdictDuplicate:
		p.stats.duplicate.Add(1)
	case VerdictRateLimited:
		p.stats.rateLimited.Add(1)
	case VerdictSenderLimit:
		p.stats.senderLimit.Add(1)
	case VerdictShardSaturated:
		p.stats.shardSaturated.Add(1)
	case VerdictPoolOverloaded:
		p.stats.poolOverloaded.Add(1)
	}
	if n := len(d.Dropped); n > 0 {
		if d.Verdict == VerdictReplaced {
			n-- // the replacement victim is counted under replaced
		}
		p.stats.evicted.Add(int64(n))
	}
	return d
}

// admitLocked is the pipeline body. Caller holds s.mu.
func (p *Pool) admitLocked(s *shard, call contract.Call, priority uint8, id types.Hash, size int64) Decision {
	d := Decision{TxID: id}

	// Stage 1 — duplicate rejection: an identical queued transaction
	// makes this submission a no-op; the caller already holds a receipt
	// for it.
	if s.known[id] > 0 {
		d.Verdict = VerdictDuplicate
		return d
	}

	// Stage 2 — per-sender rate limit.
	var ss *senderState
	if p.cfg.rateLimiting() {
		ss = s.senders[call.Sender]
		if ss == nil {
			ss = &senderState{}
			s.senders[call.Sender] = ss
		}
		ok, wait := ss.bucket.take(p.cfg)
		if !ok {
			d.Verdict, d.RetryAfter = VerdictRateLimited, wait
			return d
		}
	} else {
		ss = s.senders[call.Sender]
	}

	// Stage 3 — sender slot cap with priority replacement: at the cap,
	// a strictly-higher-priority submission replaces the sender's worst
	// (lowest-priority, then newest) queued entry.
	if p.cfg.PerSenderSlots > 0 && ss != nil && len(ss.entries) >= p.cfg.PerSenderSlots {
		victim := ss.entries[0]
		for _, e := range ss.entries[1:] {
			if e.priority < victim.priority ||
				(e.priority == victim.priority && e.seq > victim.seq) {
				victim = e
			}
		}
		if priority <= victim.priority {
			d.Verdict = VerdictSenderLimit
			return d
		}
		p.removeLocked(s, victim)
		d.Dropped = append(d.Dropped, Dropped{ID: victim.id, Call: victim.Call})
		p.insertLocked(s, p.newEntry(call, priority))
		d.Verdict = VerdictReplaced
		p.maybePruneLocked(s)
		return d
	}

	// Stage 4 — shard occupancy cap: shed before memory pressure.
	if p.cfg.MaxShardEntries > 0 && len(s.queue) >= p.cfg.MaxShardEntries {
		d.Verdict = VerdictShardSaturated
		return d
	}

	// Stage 5 — byte budget: evict strictly-lower-priority entries,
	// lowest lane first, fattest sender first, oldest first, until the
	// submission fits its shard partition; shed the submission itself
	// when nothing cheaper remains.
	if p.perShardBytes > 0 && s.bytes+size > p.perShardBytes {
		// Feasibility first: only entries in strictly lower lanes are
		// evictable (the sorted queue's tail suffix), and nothing is
		// removed unless the submission is guaranteed to fit afterwards —
		// a shed submission must not leave collateral evictions behind.
		need := s.bytes + size - p.perShardBytes
		var evictable int64
		for i := len(s.queue) - 1; i >= 0 && s.queue[i].priority < priority; i-- {
			if evictable += s.queue[i].size; evictable >= need {
				break
			}
		}
		if evictable < need {
			d.Verdict = VerdictPoolOverloaded
			return d
		}
		for s.bytes+size > p.perShardBytes {
			victim := p.evictionVictimLocked(s, priority)
			p.removeLocked(s, victim)
			d.Dropped = append(d.Dropped, Dropped{ID: victim.id, Call: victim.Call})
		}
	}

	p.insertLocked(s, p.newEntry(call, priority))
	d.Verdict = VerdictAdmitted
	p.maybePruneLocked(s)
	return d
}

// evictionVictimLocked picks the next memory-pressure victim: among
// the shard's lowest-priority entries (the queue tail lane), the
// oldest entry of the sender with the most queued bytes. Only entries
// in a strictly lower lane than the incoming priority are evictable —
// equal-priority churn would let a flooder displace honest traffic at
// its own lane. Caller holds s.mu.
func (p *Pool) evictionVictimLocked(s *shard, incoming uint8) *entry {
	if len(s.queue) == 0 {
		return nil
	}
	tail := s.queue[len(s.queue)-1]
	if tail.priority >= incoming {
		return nil
	}
	lane := tail.priority
	var best *entry
	var bestBytes int64
	for i := len(s.queue) - 1; i >= 0 && s.queue[i].priority == lane; i-- {
		e := s.queue[i]
		b := int64(0)
		if ss := s.senders[e.sender]; ss != nil {
			b = ss.bytes
		}
		// Strict > on bytes plus the backwards (seq-descending) walk
		// leaves the oldest entry of the fattest sender in best.
		if best == nil || b > bestBytes || (b == bestBytes && e.seq < best.seq) {
			best, bestBytes = e, b
		}
	}
	return best
}

// maybePruneLocked runs the idle-sender sweep every pruneEvery
// admissions on the shard. Caller holds s.mu.
func (p *Pool) maybePruneLocked(s *shard) {
	s.admitsSincePrune++
	if s.admitsSincePrune < pruneEvery {
		return
	}
	s.admitsSincePrune = 0
	// Pure predicate sweep — each sender is kept or deleted on its own
	// state alone, nothing observes the visit order, and no schedule,
	// commitment or encoding derives from it.
	//chainvet:allow(detmap) order-insensitive per-shard sweep: deletes idle sender buckets by a pure per-element predicate; iteration order cannot reach a schedule, commitment or encoding
	for addr, ss := range s.senders {
		if len(ss.entries) == 0 && ss.bucket.full(p.cfg) {
			delete(s.senders, addr)
		}
	}
}
