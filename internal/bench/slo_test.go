package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func i64(v int64) *int64     { return &v }
func f64(v float64) *float64 { return &v }

func sampleReport() HotpathReport {
	return HotpathReport{
		Metrics: []HotpathMetric{
			{Name: "codec/block/encode/flat", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0, OpsPerSec: 1e7},
			{Name: "codec/block/encode/gob", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 60, OpsPerSec: 1e6},
		},
	}
}

func TestCheckSLOPasses(t *testing.T) {
	th := SLOThresholds{Checks: []SLOCheck{
		{Metric: "codec/block/encode/flat", MaxAllocsPerOp: i64(4), MaxBytesPerOp: i64(64)},
		{Metric: "codec/block/encode/flat", Baseline: "codec/block/encode/gob", MaxNsRatio: f64(0.5)},
		{Metric: "codec/block/encode/gob", MinOpsPerSec: f64(10)},
	}}
	if v := CheckSLO(sampleReport(), th); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckSLOViolations(t *testing.T) {
	th := SLOThresholds{Checks: []SLOCheck{
		{Metric: "codec/block/encode/gob", MaxAllocsPerOp: i64(10)},
		{Metric: "codec/block/encode/gob", MaxBytesPerOp: i64(100)},
		{Metric: "codec/block/encode/gob", MinOpsPerSec: f64(1e9)},
		{Metric: "codec/block/encode/gob", Baseline: "codec/block/encode/flat", MaxNsRatio: f64(2)},
		{Metric: "no/such/metric", MaxAllocsPerOp: i64(1)},
		{Metric: "codec/block/encode/flat", Baseline: "no/such/base", MaxNsRatio: f64(1)},
	}}
	v := CheckSLO(sampleReport(), th)
	if len(v) != 6 {
		t.Fatalf("got %d violations, want 6: %v", len(v), v)
	}
	for _, want := range []string{"allocs/op", "B/op", "below floor", "the time of", "metric missing", "baseline"} {
		found := false
		for _, s := range v {
			if strings.Contains(s, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no violation mentions %q: %v", want, v)
		}
	}
}

// TestThresholdFileMatchesSweep pins the contract between the checked-in
// threshold file and RunSLO: it must parse, and every metric it names must
// be one the sweep emits (otherwise CI silently guards nothing).
func TestThresholdFileMatchesSweep(t *testing.T) {
	f, err := os.Open("../../bench/slo_thresholds.json")
	if err != nil {
		t.Fatalf("open thresholds: %v", err)
	}
	defer f.Close()
	th, err := ReadSLOThresholds(f)
	if err != nil {
		t.Fatalf("parse thresholds: %v", err)
	}
	if len(th.Checks) == 0 {
		t.Fatal("threshold file has no checks")
	}
	emitted := map[string]bool{
		"codec/block/encode/flat": true,
		"codec/block/decode/flat": true,
		"codec/block/encode/gob":  true,
		"codec/block/decode/gob":  true,
		"engine/serial/mine":      true,
		"engine/speculative/mine": true,
		"engine/occ/mine":         true,
		"import/validate":         true,
		"mempool/admit":           true,
		"replica/read":            true,
		"relay/fanout":            true,
	}
	for _, c := range th.Checks {
		if !emitted[c.Metric] {
			t.Errorf("threshold names unknown metric %q", c.Metric)
		}
		if c.Baseline != "" && !emitted[c.Baseline] {
			t.Errorf("threshold baseline %q is not an emitted metric", c.Baseline)
		}
		if c.MaxNsRatio != nil && c.Baseline == "" {
			t.Errorf("check for %q sets max_ns_ratio without a baseline", c.Metric)
		}
	}
}

func TestReadSLOThresholdsRejectsUnknownFields(t *testing.T) {
	bad := `{"checks":[{"metric":"m","max_alocs_per_op":3}]}`
	if _, err := ReadSLOThresholds(strings.NewReader(bad)); err == nil {
		t.Fatal("typoed limit name parsed without error")
	}
}

func TestHotpathReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	r.GoVersion, r.BlockSize = "go-test", 128
	var buf bytes.Buffer
	if err := WriteHotpathJSON(&buf, r); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadHotpathReport(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.GoVersion != r.GoVersion || got.BlockSize != r.BlockSize || len(got.Metrics) != len(r.Metrics) {
		t.Fatal("report changed across JSON round trip")
	}
	if m, ok := got.Metric("codec/block/encode/gob"); !ok || m.AllocsPerOp != 60 {
		t.Fatal("metric lookup after round trip failed")
	}
}
