package bench

import (
	"os"
	"testing"
)

// TestMinerOverheadProbe is a calibration harness, not a regression
// test: it prints the miner-overhead phase under several pacing
// configurations so the sweep defaults can be chosen on real numbers.
// Enable with READS_PROBE=1.
func TestMinerOverheadProbe(t *testing.T) {
	if os.Getenv("READS_PROBE") == "" {
		t.Skip("calibration probe; set READS_PROBE=1 to run")
	}
	for i := 0; i < 4; i++ {
		cfg := ReadsConfig{}.WithDefaults()
		base, with, err := measureMinerOverhead(cfg)
		if err != nil {
			t.Fatalf("probe run %d: %v", i+1, err)
		}
		t.Logf("run %d: blocks=%d×%d size=%d rtt=%s: base=%.1f with=%.1f overhead=%.2f%%",
			i+1, cfg.MinerRuns, cfg.MinerBlocks, cfg.MinerBlockSize, cfg.MineRTT,
			base, with, (1-with/base)*100)
	}
}
