package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"contractstm/internal/cluster"
	"contractstm/internal/engine"
	"contractstm/internal/workload"
)

// ClusterConfig tunes the end-to-end propagation sweep: a miner node
// seals blocks from a generated workload and broadcasts each over HTTP to
// N validating followers, which replay the published schedule before
// appending. Unlike the single-process sweeps this is wall-clock by
// nature — the wire, the gob codec and the validator all sit on the
// measured path.
type ClusterConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// BlockSize is transactions per block (default 64).
	BlockSize int
	// Blocks is how many blocks each point mines and propagates
	// (default 4).
	Blocks int
	// ConflictPercent is the workload's data-conflict percentage. Zero
	// means the default (15, the paper's block-size-sweep setting);
	// negative requests a conflict-free workload — the same convention as
	// Config.InterferencePerMille.
	ConflictPercent int
	// Workers is every node's pool size (default 3).
	Workers int
	// Seed makes workload generation deterministic (default
	// DefaultSeed).
	Seed int64
	// PeerCounts is the follower-count axis (default 1..4).
	PeerCounts []int
	// Engines lists the engines to measure (default all).
	Engines []engine.Kind
}

// WithDefaults returns c with every unset field at its default.
func (c ClusterConfig) WithDefaults() ClusterConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.Blocks <= 0 {
		c.Blocks = 4
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.PeerCounts) == 0 {
		c.PeerCounts = []int{1, 2, 3, 4}
	}
	if len(c.Engines) == 0 {
		c.Engines = engine.Kinds()
	}
	return c
}

// ClusterPoint is one (engine, peer-count) propagation measurement.
type ClusterPoint struct {
	Engine engine.Kind
	Peers  int
	Blocks int
	Txs    int
	// Elapsed is wall-clock from first mine to every follower holding
	// the miner's head.
	Elapsed time.Duration
	// BlocksPerSec and TxsPerSec are end-to-end throughput: mined,
	// shipped and re-validated by every follower.
	BlocksPerSec float64
	TxsPerSec    float64
}

// MeasureCluster runs one propagation point: mine cfg.Blocks blocks on a
// miner with peers validating followers attached over HTTP, broadcasting
// each sealed block, and verify full convergence before stopping the
// clock.
func MeasureCluster(eng engine.Kind, peers int, cfg ClusterConfig) (ClusterPoint, error) {
	cfg = cfg.WithDefaults()
	totalTxs := cfg.Blocks * cfg.BlockSize
	worlds, calls, err := cluster.GenerateWorlds(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	}, peers+1)
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("bench: cluster workload: %w", err)
	}
	cl, err := cluster.New(cluster.Config{Worlds: worlds, Engine: eng, Workers: cfg.Workers})
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("bench: cluster: %w", err)
	}
	defer cl.Close()

	miner := cl.Node(0)
	miner.SubmitAll(calls)
	bcast := cl.Broadcaster(0)
	ctx := context.Background()

	start := time.Now()
	for b := 0; b < cfg.Blocks; b++ {
		blk, err := miner.MineOne(cfg.BlockSize)
		if err != nil {
			return ClusterPoint{}, fmt.Errorf("bench: cluster mine block %d (%v): %w", b+1, eng, err)
		}
		if failed := cluster.Failed(bcast.Broadcast(ctx, blk)); len(failed) > 0 {
			return ClusterPoint{}, fmt.Errorf("bench: cluster broadcast block %d (%v): %v", b+1, eng, failed[0].Err)
		}
	}
	elapsed := time.Since(start)
	if !cl.Converged() {
		return ClusterPoint{}, fmt.Errorf("bench: cluster (%v, %d peers) did not converge", eng, peers)
	}
	if got := miner.Head().Header.Number; got != uint64(cfg.Blocks) {
		return ClusterPoint{}, fmt.Errorf("bench: cluster height %d, want %d", got, cfg.Blocks)
	}

	pt := ClusterPoint{Engine: eng, Peers: peers, Blocks: cfg.Blocks, Txs: totalTxs, Elapsed: elapsed}
	if s := elapsed.Seconds(); s > 0 {
		pt.BlocksPerSec = float64(cfg.Blocks) / s
		pt.TxsPerSec = float64(totalTxs) / s
	}
	return pt, nil
}

// SweepCluster measures every (engine, peer-count) combination.
func SweepCluster(cfg ClusterConfig) ([]ClusterPoint, error) {
	cfg = cfg.WithDefaults()
	var out []ClusterPoint
	for _, eng := range cfg.Engines {
		for _, peers := range cfg.PeerCounts {
			pt, err := MeasureCluster(eng, peers, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// WriteClusterCSV emits every propagation data point as CSV.
func WriteClusterCSV(w io.Writer, points []ClusterPoint) {
	fmt.Fprintln(w, "engine,peers,blocks,txs,elapsed_ns,blocks_per_sec,txs_per_sec")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.2f,%.2f\n",
			p.Engine, p.Peers, p.Blocks, p.Txs, p.Elapsed.Nanoseconds(), p.BlocksPerSec, p.TxsPerSec)
	}
}

// WriteClusterSweep renders the propagation sweep as an aligned table.
func WriteClusterSweep(w io.Writer, cfg ClusterConfig, points []ClusterPoint) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "Cluster sweep [%s]: %d blocks × %d txs, %d%% conflict, end-to-end over HTTP\n",
		cfg.Kind, cfg.Blocks, cfg.BlockSize, cfg.ConflictPercent)
	fmt.Fprintf(w, "  %-13s %-7s %-12s %-12s %-12s\n", "engine", "peers", "elapsed", "blocks/s", "txs/s")
	for _, p := range points {
		fmt.Fprintf(w, "  %-13s %-7d %-12s %-12.1f %-12.1f\n",
			p.Engine, p.Peers, p.Elapsed.Round(time.Millisecond), p.BlocksPerSec, p.TxsPerSec)
	}
	fmt.Fprintln(w)
}
