package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"contractstm/internal/api/client"
	"contractstm/internal/cluster"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/replica"
	"contractstm/internal/workload"
)

// ReadsConfig tunes the read-path scale-out sweep: one miner seals a
// chain, then 1..N read replicas follow it and a ReplicaSet client
// spreads a fixed read workload across them. Three questions, three
// phases: does read QPS scale with replica count, can one upstream
// subscription fan out to a thousand downstream SSE clients, and does
// an attached replica slow the miner down?
type ReadsConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// Blocks is the chain length replicas serve reads over (default 6).
	Blocks int
	// BlockSize is transactions per block (default 24).
	BlockSize int
	// ConflictPercent is the workload's data-conflict percentage
	// (default SweepConflictFixed; negative = conflict-free).
	ConflictPercent int
	// Workers is every node's execution pool size (default 3).
	Workers int
	// Engine selects the execution engine (default OCC).
	Engine engine.Kind
	// ReplicaCounts is the sweep axis (default 1, 2, 4).
	ReplicaCounts []int
	// Reads is the fixed read count measured per point (default 1500).
	Reads int
	// MaxInFlight caps concurrent reads per replica; the sweep sizes its
	// closed-loop reader pool to replicas × MaxInFlight — the
	// provisioning rule a deployment uses, so QPS measures the
	// concurrency the replica tier admits (default 2).
	MaxInFlight int
	// MaxLag is the ReplicaSet's bounded-staleness contract in blocks
	// (default 8).
	MaxLag uint64
	// ReadRTT is the simulated round-trip time on every read client,
	// replicas and primary alike, injected at the HTTP transport
	// (default 4ms; negative = none). A single-host bench serves every
	// node over loopback, which hides exactly the cost read scale-out
	// exists to amortize: the wire time a read spends in flight. With a
	// fixed RTT each reader sustains ~1/RTT reads/s, so aggregate QPS is
	// capacity-bound — more replicas admit more concurrent readers.
	ReadRTT time.Duration
	// Subscribers is the fan-out phase's downstream SSE client count
	// (default 1000).
	Subscribers int
	// MinerBlocks is the miner-overhead phase's blocks per measured
	// batch (default 16).
	MinerBlocks int
	// MinerBlockSize is transactions per block in that phase (default 8).
	MinerBlockSize int
	// MinerRuns is the measured batches per miner; the phase keeps the
	// best batch on each side, stripping single-core scheduler noise
	// (default 7).
	MinerRuns int
	// MineRTT is the simulated round-trip time on the mine-driving
	// client (default 8ms, following SyncConfig.LinkRTT's rationale;
	// negative = none). Block production is driven remotely — consensus
	// rounds arrive over the wire — and the replica's validation work
	// overlaps that idle gap rather than stealing miner time. On this
	// single-core host the gap must also absorb the relay's block fetch
	// and validation, so the default is wider than the read RTT.
	MineRTT time.Duration
	// Seed makes workload generation deterministic (default DefaultSeed).
	Seed int64
}

// WithDefaults returns c with every unset field at its default.
func (c ReadsConfig) WithDefaults() ReadsConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.Blocks <= 0 {
		c.Blocks = 6
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 24
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Engine == 0 {
		c.Engine = engine.KindOCC
	}
	if len(c.ReplicaCounts) == 0 {
		c.ReplicaCounts = []int{1, 2, 4}
	}
	if c.Reads <= 0 {
		c.Reads = 1500
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxLag == 0 {
		c.MaxLag = 8
	}
	if c.ReadRTT == 0 {
		c.ReadRTT = 4 * time.Millisecond
	} else if c.ReadRTT < 0 {
		c.ReadRTT = 0
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 1000
	}
	if c.MinerBlocks <= 0 {
		c.MinerBlocks = 16
	}
	if c.MinerBlockSize <= 0 {
		c.MinerBlockSize = 8
	}
	if c.MinerRuns <= 0 {
		c.MinerRuns = 7
	}
	if c.MineRTT == 0 {
		c.MineRTT = 8 * time.Millisecond
	} else if c.MineRTT < 0 {
		c.MineRTT = 0
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// ReadsPoint is one measured replica count: a fixed read workload
// spread across the tier by a ReplicaSet client.
type ReadsPoint struct {
	Replicas int `json:"replicas"`
	// Readers is the closed-loop reader pool size (replicas × MaxInFlight).
	Readers     int     `json:"readers"`
	Reads       int     `json:"reads"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	// SpeedupVs1 is this point's reads/s over the one-replica point's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ReadsReport is the BENCH_reads.json artifact.
type ReadsReport struct {
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Engine          string  `json:"engine"`
	Blocks          int     `json:"blocks"`
	BlockSize       int     `json:"block_size"`
	ConflictPercent int     `json:"conflict_percent"`
	Workers         int     `json:"workers"`
	ReadRTTMs       float64 `json:"read_rtt_ms"`
	MaxInFlight     int     `json:"max_in_flight"`
	MaxLag          uint64  `json:"max_lag"`

	Points []ReadsPoint `json:"points"`
	// SpeedupAt4 is the four-replica point's speedup over one replica
	// (0 when 4 is not on the axis) — the headline scale-out number.
	SpeedupAt4 float64 `json:"speedup_at_4_replicas"`

	// Fan-out phase: Subscribers downstream SSE clients behind one
	// replica, all delivered one relayed block while the upstream
	// carries UpstreamSubs (must be 1) subscribe connections.
	FanoutSubscribers  int     `json:"fanout_subscribers"`
	FanoutUpstreamSubs int     `json:"fanout_upstream_subscribers"`
	FanoutElapsedNs    int64   `json:"fanout_elapsed_ns"`
	FanoutEventsPerSec float64 `json:"fanout_events_per_sec"`

	// Miner-overhead phase: a WAL-synced miner driven over HTTP, bare
	// vs with one live replica attached; best of MinerRuns batches on
	// each side. OverheadPercent is the blocks/s the replica costs the
	// miner (negative = noise).
	MinerBlocks          int     `json:"miner_blocks"`
	MinerBlockSize       int     `json:"miner_block_size"`
	MinerRuns            int     `json:"miner_runs"`
	MineRTTMs            float64 `json:"mine_rtt_ms"`
	MinerBaselineBPS     float64 `json:"miner_baseline_blocks_per_sec"`
	MinerWithReplicaBPS  float64 `json:"miner_with_replica_blocks_per_sec"`
	MinerOverheadPercent float64 `json:"miner_overhead_percent"`
}

// rttClient builds an SDK HTTP client with the simulated wire delay.
func rttClient(rtt time.Duration) *http.Client {
	return &http.Client{
		Timeout:   30 * time.Second,
		Transport: &cluster.LatencyTransport{RTT: rtt},
	}
}

// readReplica is one running follower: its node served over HTTP and
// the replica machinery following the upstream.
type readReplica struct {
	rep  *replica.Replica
	srv  *httptest.Server
	stop context.CancelFunc
	done chan error
}

// startReadReplica builds a follower on world w, starts it following
// upstream, and waits until it durably reaches height.
func startReadReplica(w *contract.World, upstream string, height uint64, cfg ReadsConfig) (*readReplica, error) {
	n, err := node.New(node.Config{World: w, Workers: cfg.Workers, Engine: cfg.Engine})
	if err != nil {
		return nil, fmt.Errorf("bench: reads replica node: %w", err)
	}
	rep, err := replica.New(replica.Config{Node: n, Upstream: upstream})
	if err != nil {
		return nil, fmt.Errorf("bench: reads replica: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	deadline := time.Now().Add(30 * time.Second)
	for n.Height() < height {
		select {
		case err := <-done:
			cancel()
			return nil, fmt.Errorf("bench: reads replica exited during sync: %w", err)
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			<-done
			return nil, fmt.Errorf("bench: reads replica stuck at height %d, want %d", n.Height(), height)
		}
		time.Sleep(time.Millisecond)
	}
	return &readReplica{
		rep: rep, srv: httptest.NewServer(n.Handler()),
		stop: cancel, done: done,
	}, nil
}

// close tears the replica down, surfacing any fault Run hit.
func (r *readReplica) close() error {
	r.stop()
	err := <-r.done
	r.srv.Close()
	if err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("bench: reads replica run: %w", err)
	}
	return nil
}

// measureReadPoint runs the fixed read workload against count replicas
// through a ReplicaSet and times it.
func measureReadPoint(cfg ReadsConfig, upstream string, worlds []*contract.World, count int) (ReadsPoint, error) {
	reps := make([]*readReplica, 0, count)
	closeAll := func() error {
		var first error
		for _, r := range reps {
			if err := r.close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	replicas := make([]*client.Client, 0, count)
	for i := 0; i < count; i++ {
		r, err := startReadReplica(worlds[i], upstream, uint64(cfg.Blocks), cfg)
		if err != nil {
			closeAll()
			return ReadsPoint{}, err
		}
		reps = append(reps, r)
		replicas = append(replicas, client.New(r.srv.URL, client.WithHTTPClient(rttClient(cfg.ReadRTT))))
	}

	// The primary pays the same wire cost, so a read that spills to it
	// is no cheaper — the sweep measures tier capacity, not fallback.
	rs, err := client.NewReplicaSet(client.ReplicaSetConfig{
		Primary:     client.New(upstream, client.WithHTTPClient(rttClient(cfg.ReadRTT))),
		Replicas:    replicas,
		MaxLag:      cfg.MaxLag,
		MaxInFlight: cfg.MaxInFlight,
	})
	if err != nil {
		closeAll()
		return ReadsPoint{}, fmt.Errorf("bench: reads replica set: %w", err)
	}

	readers := count * cfg.MaxInFlight
	per := cfg.Reads / readers
	extra := cfg.Reads % readers
	ctx := context.Background()
	var wg sync.WaitGroup
	fails := make(chan error, readers)
	start := time.Now()
	for w := 0; w < readers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := rs.Head(ctx); err != nil {
					fails <- fmt.Errorf("bench: read failed: %w", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(fails)
	if err := <-fails; err != nil {
		closeAll()
		return ReadsPoint{}, err
	}
	if err := closeAll(); err != nil {
		return ReadsPoint{}, err
	}

	pt := ReadsPoint{Replicas: count, Readers: readers, Reads: cfg.Reads, ElapsedNs: elapsed.Nanoseconds()}
	if s := elapsed.Seconds(); s > 0 {
		pt.ReadsPerSec = float64(cfg.Reads) / s
	}
	return pt, nil
}

// measureFanout subscribes cfg.Subscribers SSE clients to one replica,
// relays one freshly mined block to all of them, and checks the
// upstream carried exactly one subscription.
func measureFanout(cfg ReadsConfig, up *node.Node, upstream string, w *contract.World, calls []contract.Call) (elapsed time.Duration, upstreamSubs int, err error) {
	rep, err := startReadReplica(w, upstream, uint64(cfg.Blocks), cfg)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := rep.close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	ctx := context.Background()
	sdk := client.New(rep.srv.URL)
	streams := make([]*client.Stream, cfg.Subscribers)
	for i := range streams {
		s, serr := sdk.Subscribe(ctx)
		if serr != nil {
			err = fmt.Errorf("bench: fanout subscriber %d: %w", i, serr)
			return
		}
		defer s.Close()
		streams[i] = s
	}

	want := uint64(cfg.Blocks) + 1
	var wg sync.WaitGroup
	fails := make(chan error, cfg.Subscribers)
	start := time.Now()
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s *client.Stream) {
			defer wg.Done()
			for {
				ev, nerr := s.Next()
				if nerr != nil {
					fails <- fmt.Errorf("bench: fanout subscriber %d: %w", i, nerr)
					return
				}
				if ev.Block.Number >= want {
					return
				}
			}
		}(i, s)
	}
	up.SubmitAll(calls)
	if _, err = up.MineOne(cfg.BlockSize); err != nil {
		err = fmt.Errorf("bench: fanout mine: %w", err)
		return
	}
	wg.Wait()
	elapsed = time.Since(start)
	close(fails)
	if ferr := <-fails; ferr != nil {
		err = ferr
		return
	}

	st, err := client.New(upstream).Status(ctx)
	if err != nil {
		err = fmt.Errorf("bench: fanout upstream status: %w", err)
		return
	}
	if st.API != nil {
		upstreamSubs = st.API.Subscribers
	}
	return elapsed, upstreamSubs, nil
}

// durableMiner builds a WAL-synced miner in a throwaway data dir.
func durableMiner(w *contract.World, cfg ReadsConfig) (*node.Node, func(), error) {
	dir, err := os.MkdirTemp("", "readsbench-")
	if err != nil {
		return nil, nil, fmt.Errorf("bench: reads miner dir: %w", err)
	}
	n, err := node.New(node.Config{
		World: w, Workers: cfg.Workers, Engine: cfg.Engine,
		DataDir: dir, Persist: persist.Options{SyncEvery: 1, SnapshotEvery: -1},
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, fmt.Errorf("bench: reads miner: %w", err)
	}
	cleanup := func() {
		n.Close()
		os.RemoveAll(dir)
	}
	return n, cleanup, nil
}

// mineBatch drives one timed batch remotely, one block per round trip,
// and returns its blocks/s.
func mineBatch(cfg ReadsConfig, sdk *client.Client, n *node.Node, calls []contract.Call) (float64, error) {
	n.SubmitAll(calls)
	ctx := context.Background()
	// Settle GC debt from the previous batch (and the other miner's)
	// before the timer starts, as testing.B does between runs —
	// otherwise a collection triggered by older garbage lands inside
	// whichever batch happens to cross the heap-growth threshold.
	runtime.GC()
	start := time.Now()
	for b := 0; b < cfg.MinerBlocks; b++ {
		if _, err := sdk.Mine(ctx, cfg.MinerBlockSize); err != nil {
			return 0, fmt.Errorf("bench: reads mine block %d: %w", b+1, err)
		}
	}
	elapsed := time.Since(start)
	if s := elapsed.Seconds(); s > 0 {
		return float64(cfg.MinerBlocks) / s, nil
	}
	return 0, nil
}

// measureMinerOverhead compares the miner bare vs with one live
// replica applying its blocks. The two miners mine in alternating
// batches, so slow stretches of the host hit both sides alike, and
// each side keeps its best batch.
func measureMinerOverhead(cfg ReadsConfig) (baseline, withReplica float64, err error) {
	perBatch := cfg.MinerBlocks * cfg.MinerBlockSize
	mw, mc, err := cluster.GenerateWorlds(workload.Params{
		Kind: cfg.Kind, Transactions: cfg.MinerRuns * perBatch,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed + 1,
	}, 3)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: reads miner workload: %w", err)
	}

	// Bare miner, and an identical one with a live replica attached.
	base, cleanupBase, err := durableMiner(mw[0], cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cleanupBase()
	baseSrv := httptest.NewServer(base.Handler())
	defer baseSrv.Close()

	miner, cleanupMiner, err := durableMiner(mw[1], cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cleanupMiner()
	minerSrv := httptest.NewServer(miner.Handler())
	defer minerSrv.Close()
	rep, err := startReadReplica(mw[2], minerSrv.URL, 0, cfg)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := rep.close(); cerr != nil && err == nil {
			baseline, withReplica, err = 0, 0, cerr
		}
	}()

	// Hold mining until the relay's subscription is live, so every
	// block travels through the fan-out machinery during the timing.
	ctx := context.Background()
	upSDK := client.New(minerSrv.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, serr := upSDK.Status(ctx)
		if serr != nil {
			return 0, 0, fmt.Errorf("bench: reads miner status: %w", serr)
		}
		if st.API != nil && st.API.Subscribers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, errors.New("bench: reads replica never subscribed to the miner")
		}
		time.Sleep(time.Millisecond)
	}

	baseSDK := client.New(baseSrv.URL, client.WithHTTPClient(rttClient(cfg.MineRTT)))
	withSDK := client.New(minerSrv.URL, client.WithHTTPClient(rttClient(cfg.MineRTT)))
	for r := 0; r < cfg.MinerRuns; r++ {
		batch := mc[r*perBatch : (r+1)*perBatch]
		bps, berr := mineBatch(cfg, baseSDK, base, batch)
		if berr != nil {
			return 0, 0, berr
		}
		if bps > baseline {
			baseline = bps
		}
		bps, berr = mineBatch(cfg, withSDK, miner, batch)
		if berr != nil {
			return 0, 0, berr
		}
		if bps > withReplica {
			withReplica = bps
		}
	}

	// The replica must have followed without divergence.
	deadline = time.Now().Add(30 * time.Second)
	for rep.rep.Node().Height() < uint64(cfg.MinerRuns*cfg.MinerBlocks) {
		if time.Now().After(deadline) {
			return 0, 0, errors.New("bench: reads replica fell behind the miner")
		}
		time.Sleep(time.Millisecond)
	}
	if rep.rep.Node().Head().Header.Hash() != miner.Head().Header.Hash() {
		return 0, 0, errors.New("bench: reads replica diverged from the miner")
	}
	return baseline, withReplica, nil
}

// SweepReads mines the read chain once and measures every phase: QPS
// per replica count, SSE fan-out, and miner overhead.
func SweepReads(cfg ReadsConfig) (ReadsReport, error) {
	cfg = cfg.WithDefaults()
	report := ReadsReport{
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Engine:          cfg.Engine.String(),
		Blocks:          cfg.Blocks,
		BlockSize:       cfg.BlockSize,
		ConflictPercent: cfg.ConflictPercent,
		Workers:         cfg.Workers,
		ReadRTTMs:       float64(cfg.ReadRTT) / float64(time.Millisecond),
		MaxInFlight:     cfg.MaxInFlight,
		MaxLag:          cfg.MaxLag,
		MineRTTMs:       float64(cfg.MineRTT) / float64(time.Millisecond),
		MinerBlocks:     cfg.MinerBlocks,
		MinerBlockSize:  cfg.MinerBlockSize,
		MinerRuns:       cfg.MinerRuns,
	}

	// One world per follower (every sweep replica + the fan-out one)
	// plus the miner's; all identical genesis. The call list holds one
	// extra block the fan-out phase mines live.
	followers := 1 // fan-out replica
	for _, c := range cfg.ReplicaCounts {
		followers += c
	}
	totalTxs := (cfg.Blocks + 1) * cfg.BlockSize
	worlds, calls, err := cluster.GenerateWorlds(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	}, followers+1)
	if err != nil {
		return ReadsReport{}, fmt.Errorf("bench: reads workload: %w", err)
	}

	up, err := node.New(node.Config{World: worlds[0], Workers: cfg.Workers, Engine: cfg.Engine})
	if err != nil {
		return ReadsReport{}, fmt.Errorf("bench: reads upstream: %w", err)
	}
	srv := httptest.NewServer(up.Handler())
	defer srv.Close()
	up.SubmitAll(calls[:cfg.Blocks*cfg.BlockSize])
	for b := 0; b < cfg.Blocks; b++ {
		if _, err := up.MineOne(cfg.BlockSize); err != nil {
			return ReadsReport{}, fmt.Errorf("bench: reads mine block %d: %w", b+1, err)
		}
	}

	next := 1
	var at1 float64
	for _, count := range cfg.ReplicaCounts {
		pt, err := measureReadPoint(cfg, srv.URL, worlds[next:next+count], count)
		if err != nil {
			return ReadsReport{}, err
		}
		next += count
		if count == 1 {
			at1 = pt.ReadsPerSec
		}
		if at1 > 0 {
			pt.SpeedupVs1 = pt.ReadsPerSec / at1
		}
		if count == 4 {
			report.SpeedupAt4 = pt.SpeedupVs1
		}
		report.Points = append(report.Points, pt)
	}

	fanElapsed, upstreamSubs, err := measureFanout(cfg, up, srv.URL, worlds[next], calls[cfg.Blocks*cfg.BlockSize:])
	if err != nil {
		return ReadsReport{}, err
	}
	report.FanoutSubscribers = cfg.Subscribers
	report.FanoutUpstreamSubs = upstreamSubs
	report.FanoutElapsedNs = fanElapsed.Nanoseconds()
	if s := fanElapsed.Seconds(); s > 0 {
		report.FanoutEventsPerSec = float64(cfg.Subscribers) / s
	}

	baseline, withReplica, err := measureMinerOverhead(cfg)
	if err != nil {
		return ReadsReport{}, err
	}
	report.MinerBaselineBPS = baseline
	report.MinerWithReplicaBPS = withReplica
	if baseline > 0 {
		report.MinerOverheadPercent = (1 - withReplica/baseline) * 100
	}
	return report, nil
}

// WriteReadsJSON writes the report as indented JSON (the CI artifact).
func WriteReadsJSON(w io.Writer, r ReadsReport) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadReadsReport decodes a BENCH_reads.json artifact.
func ReadReadsReport(r io.Reader) (ReadsReport, error) {
	var report ReadsReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return ReadsReport{}, fmt.Errorf("bench: reads report: %w", err)
	}
	return report, nil
}

// WriteReadsTable renders the sweep for humans.
func WriteReadsTable(w io.Writer, r ReadsReport) {
	fmt.Fprintf(w, "Read scale-out sweep [%s]: %d blocks × %d txs, %d%% conflict, %.1fms read RTT, max-in-flight %d, %s GOMAXPROCS=%d\n",
		r.Engine, r.Blocks, r.BlockSize, r.ConflictPercent, r.ReadRTTMs, r.MaxInFlight, r.GoVersion, r.GOMAXPROCS)
	fmt.Fprintf(w, "  %-9s %-8s %-8s %-12s %-12s %-8s\n",
		"replicas", "readers", "reads", "elapsed", "reads/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-9d %-8d %-8d %-12s %-12.1f %-8.2f\n",
			p.Replicas, p.Readers, p.Reads,
			time.Duration(p.ElapsedNs).Round(time.Millisecond), p.ReadsPerSec, p.SpeedupVs1)
	}
	fmt.Fprintf(w, "  fan-out: %d SSE subscribers, %d upstream connection(s), delivered in %s (%.0f ev/s)\n",
		r.FanoutSubscribers, r.FanoutUpstreamSubs,
		time.Duration(r.FanoutElapsedNs).Round(time.Millisecond), r.FanoutEventsPerSec)
	fmt.Fprintf(w, "  miner: %.1f blocks/s bare, %.1f with a replica attached (%.1f%% overhead; best of %d × %d blocks of %d txs, %.1fms mine RTT)\n\n",
		r.MinerBaselineBPS, r.MinerWithReplicaBPS, r.MinerOverheadPercent,
		r.MinerRuns, r.MinerBlocks, r.MinerBlockSize, r.MineRTTMs)
}
