package bench

// Persistence sweep smoke test: a tiny durability matrix, so plain
// `go test ./...` exercises the measured pipeline — node with WAL,
// fsync policies, snapshots, graceful close — end to end.

import (
	"bytes"
	"strings"
	"testing"

	"contractstm/internal/engine"
)

func TestPersistenceSweepSmoke(t *testing.T) {
	cfg := PersistenceConfig{
		Blocks: 2, BlockSize: 8, Workers: 2,
		Engines: []engine.Kind{engine.KindSerial, engine.KindOCC},
	}
	points, err := SweepPersistence(cfg)
	if err != nil {
		t.Fatalf("SweepPersistence: %v", err)
	}
	wantPoints := 2 * len(PersistModes())
	if len(points) != wantPoints {
		t.Fatalf("%d points, want %d", len(points), wantPoints)
	}
	for _, p := range points {
		if p.BlocksPerSec <= 0 || p.TxsPerSec <= 0 {
			t.Fatalf("%v/%s: non-positive throughput", p.Engine, p.Mode)
		}
		durable := p.Mode != "none"
		if durable && p.WalBytes == 0 {
			t.Fatalf("%v/%s: durable mode left no bytes on disk", p.Engine, p.Mode)
		}
		if !durable && p.WalBytes != 0 {
			t.Fatalf("%v/%s: in-memory mode reported disk bytes", p.Engine, p.Mode)
		}
	}

	var tbl, csv bytes.Buffer
	WritePersistenceSweep(&tbl, cfg, points)
	WritePersistenceCSV(&csv, points)
	if !strings.Contains(tbl.String(), "wal-sync") || !strings.Contains(csv.String(), "wal+snap") {
		t.Fatal("reports missing durability modes")
	}
	if got := strings.Count(csv.String(), "\n"); got != wantPoints+1 {
		t.Fatalf("csv has %d lines, want %d", got, wantPoints+1)
	}
}
