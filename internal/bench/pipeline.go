package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/workload"
)

// The pipeline sweep measures what stage overlap buys: the same
// mine-N-blocks run under WAL-synced persistence, with the
// sealed-not-durable window swept from 1 (fully synchronous — fsync of
// block N blocks execution of N+1) upward. Depth >= 2 overlaps the fsync
// with the next block's execution and lets the group-commit writer batch
// several blocks under one fsync; the fsync and group columns attribute
// the win. Wall-clock by nature — the disk sits on the measured path.

// PipelineConfig tunes the pipeline-depth sweep.
type PipelineConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// BlockSize is transactions per block (default 64).
	BlockSize int
	// Blocks is how many blocks each point mines (default 8).
	Blocks int
	// ConflictPercent follows the ClusterConfig convention: 0 = default
	// (15), negative = conflict-free.
	ConflictPercent int
	// Workers is the node's pool size (default 3).
	Workers int
	// Seed makes workload generation deterministic (default DefaultSeed).
	Seed int64
	// Engines lists the engines to measure (default all).
	Engines []engine.Kind
	// Depths is the pipeline-depth axis (default 1, 2, 4).
	Depths []int
}

// WithDefaults returns c with every unset field at its default.
func (c PipelineConfig) WithDefaults() PipelineConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.Blocks <= 0 {
		c.Blocks = 8
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Engines) == 0 {
		c.Engines = engine.Kinds()
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 2, 4}
	}
	return c
}

// DepthsUpTo returns the default depth axis clipped to max, always
// including max itself — the shape `blockbench -pipeline N` sweeps.
func DepthsUpTo(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for _, d := range []int{1, 2, 4, 8} {
		if d < max {
			out = append(out, d)
		}
	}
	return append(out, max)
}

// PipelinePoint is one (engine, depth) measurement.
type PipelinePoint struct {
	Engine engine.Kind
	Depth  int
	Blocks int
	Txs    int
	// Elapsed covers mining every block and draining the pipeline, so
	// every block is durable when the clock stops.
	Elapsed      time.Duration
	BlocksPerSec float64
	TxsPerSec    float64
	// Fsyncs and FsyncTime are the WAL's sync count and summed latency;
	// MaxGroup is the largest group commit the writer managed. Depth 1
	// fsyncs once per block; deeper pipelines amortize.
	Fsyncs    int64
	FsyncTime time.Duration
	MaxGroup  int
	// WalBytes is the framed bytes appended to the WAL.
	WalBytes int64
}

// MeasurePipeline runs one point: mine cfg.Blocks blocks through the
// pipeline at the given depth, WAL-synced, in a throwaway data dir.
func MeasurePipeline(eng engine.Kind, depth int, cfg PipelineConfig) (PipelinePoint, error) {
	cfg = cfg.WithDefaults()
	totalTxs := cfg.Blocks * cfg.BlockSize
	wl, err := workload.Generate(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	})
	if err != nil {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline workload: %w", err)
	}
	dir, err := os.MkdirTemp("", "pipebench-")
	if err != nil {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline dir: %w", err)
	}
	defer os.RemoveAll(dir)
	n, err := node.New(node.Config{
		World: wl.World, Workers: cfg.Workers, Engine: eng,
		DataDir: dir, Persist: persist.Options{SyncEvery: 1, SnapshotEvery: -1},
		PipelineDepth: depth,
	})
	if err != nil {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline node: %w", err)
	}
	n.SubmitAll(wl.Calls)

	start := time.Now()
	mined, err := n.MinePipelined(cfg.Blocks, cfg.BlockSize)
	elapsed := time.Since(start)
	if err != nil {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline mine (%v, depth %d): %w", eng, depth, err)
	}
	if mined != cfg.Blocks {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline (%v, depth %d) mined %d blocks, want %d", eng, depth, mined, cfg.Blocks)
	}
	st := n.CurrentStatus()
	if err := n.Close(); err != nil {
		return PipelinePoint{}, fmt.Errorf("bench: pipeline close: %w", err)
	}

	pt := PipelinePoint{
		Engine: eng, Depth: depth, Blocks: cfg.Blocks, Txs: totalTxs, Elapsed: elapsed,
		Fsyncs:    st.WalFsyncs,
		FsyncTime: time.Duration(st.WalFsyncMicros) * time.Microsecond,
		MaxGroup:  st.WalMaxGroup,
		WalBytes:  st.WalBytesWritten,
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.BlocksPerSec = float64(cfg.Blocks) / s
		pt.TxsPerSec = float64(totalTxs) / s
	}
	return pt, nil
}

// SweepPipeline measures every (engine, depth) combination.
func SweepPipeline(cfg PipelineConfig) ([]PipelinePoint, error) {
	cfg = cfg.WithDefaults()
	var out []PipelinePoint
	for _, eng := range cfg.Engines {
		for _, depth := range cfg.Depths {
			pt, err := MeasurePipeline(eng, depth, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// WritePipelineCSV emits every pipeline data point as CSV.
func WritePipelineCSV(w io.Writer, points []PipelinePoint) {
	fmt.Fprintln(w, "engine,depth,blocks,txs,elapsed_ns,blocks_per_sec,txs_per_sec,fsyncs,fsync_ns,max_group,wal_bytes")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.2f,%.2f,%d,%d,%d,%d\n",
			p.Engine, p.Depth, p.Blocks, p.Txs, p.Elapsed.Nanoseconds(),
			p.BlocksPerSec, p.TxsPerSec, p.Fsyncs, p.FsyncTime.Nanoseconds(), p.MaxGroup, p.WalBytes)
	}
}

// WritePipelineSweep renders the pipeline sweep as an aligned table.
func WritePipelineSweep(w io.Writer, cfg PipelineConfig, points []PipelinePoint) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "Pipeline sweep [%s]: %d blocks × %d txs, %d%% conflict, WAL-synced, wall-clock incl. disk\n",
		cfg.Kind, cfg.Blocks, cfg.BlockSize, cfg.ConflictPercent)
	fmt.Fprintf(w, "  %-13s %-7s %-12s %-12s %-12s %-8s %-11s %-9s\n",
		"engine", "depth", "elapsed", "blocks/s", "txs/s", "fsyncs", "fsync-avg", "max-group")
	for _, p := range points {
		avg := "-"
		if p.Fsyncs > 0 {
			avg = (p.FsyncTime / time.Duration(p.Fsyncs)).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-13s %-7d %-12s %-12.1f %-12.1f %-8d %-11s %-9d\n",
			p.Engine, p.Depth, p.Elapsed.Round(time.Millisecond), p.BlocksPerSec, p.TxsPerSec,
			p.Fsyncs, avg, p.MaxGroup)
	}
	fmt.Fprintln(w)
}
