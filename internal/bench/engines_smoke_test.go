package bench

// Benchmark smoke test: one tiny sweep per execution engine, so plain
// `go test ./...` exercises the full measurement pipeline (generate →
// serial baseline → engine mine → validate → speedup) under serial,
// speculative and OCC execution without the full bench_test.go matrix.

import (
	"strings"
	"testing"

	"contractstm/internal/engine"
	"contractstm/internal/workload"
)

func TestEngineSweepSmoke(t *testing.T) {
	sizes := []int{10, 40}
	for _, ek := range engine.Kinds() {
		ek := ek
		t.Run(ek.String(), func(t *testing.T) {
			cfg := Config{Workers: 3, Engine: ek}
			s, err := SweepBlockSize(workload.KindMixed, cfg, sizes)
			if err != nil {
				t.Fatalf("SweepBlockSize: %v", err)
			}
			if len(s.Points) != len(sizes) {
				t.Fatalf("%d points for %d sizes", len(s.Points), len(sizes))
			}
			for i, p := range s.Points {
				if p.MinerSpeedup <= 0 || p.ValidatorSpeedup <= 0 {
					t.Fatalf("point %d: speedups %f/%f", i, p.MinerSpeedup, p.ValidatorSpeedup)
				}
				if ek == engine.KindOCC && p.Rounds < 1 {
					t.Fatalf("point %d: OCC reported %d rounds", i, p.Rounds)
				}
			}
		})
	}
}

func TestEngineComparisonSmoke(t *testing.T) {
	cmp, err := SweepEnginesConflict(workload.KindBallot, Config{Workers: 3}, []int{0, 60})
	if err != nil {
		t.Fatalf("SweepEnginesConflict: %v", err)
	}
	if len(cmp.Engines) != len(engine.Kinds()) {
		t.Fatalf("%d engine series, want %d", len(cmp.Engines), len(engine.Kinds()))
	}
	var sb strings.Builder
	WriteEngineComparison(&sb, cmp)
	out := sb.String()
	for _, ek := range engine.Kinds() {
		if !strings.Contains(out, ek.String()) {
			t.Fatalf("report missing engine %v:\n%s", ek, out)
		}
	}
	var csv strings.Builder
	WriteEngineCSV(&csv, []EngineComparison{cmp})
	if lines := strings.Count(csv.String(), "\n"); lines != 1+len(engine.Kinds())*2 {
		t.Fatalf("engine CSV has %d lines", lines)
	}
}
