package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/workload"
)

// The persistence sweep measures what durability costs: the same
// mine-N-blocks pipeline under no persistence, a WAL fsynced every
// block, a WAL never fsynced, and a WAL with frequent state snapshots.
// Wall-clock by nature — the file system sits on the measured path, in
// the NDN-DPDK spirit that throughput claims only count against the real
// I/O path.

// PersistMode is one durability configuration of the sweep.
type PersistMode struct {
	// Name labels the mode in reports.
	Name string
	// Durable enables the data dir at all.
	Durable bool
	// Opts tunes the WAL when durable.
	Opts persist.Options
}

// PersistModes is the default durability axis.
func PersistModes() []PersistMode {
	return []PersistMode{
		{Name: "none", Durable: false},
		{Name: "wal-sync", Durable: true, Opts: persist.Options{SyncEvery: 1, SnapshotEvery: -1}},
		{Name: "wal-nosync", Durable: true, Opts: persist.Options{SyncEvery: -1, SnapshotEvery: -1}},
		{Name: "wal+snap", Durable: true, Opts: persist.Options{SyncEvery: 1, SnapshotEvery: 4}},
	}
}

// PersistenceConfig tunes the persistence sweep.
type PersistenceConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// BlockSize is transactions per block (default 64).
	BlockSize int
	// Blocks is how many blocks each point mines (default 8).
	Blocks int
	// ConflictPercent follows the ClusterConfig convention: 0 = default
	// (15), negative = conflict-free.
	ConflictPercent int
	// Workers is the node's pool size (default 3).
	Workers int
	// Seed makes workload generation deterministic (default DefaultSeed).
	Seed int64
	// Engines lists the engines to measure (default all).
	Engines []engine.Kind
	// Modes lists the durability configurations (default PersistModes).
	Modes []PersistMode
}

// WithDefaults returns c with every unset field at its default.
func (c PersistenceConfig) WithDefaults() PersistenceConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.Blocks <= 0 {
		c.Blocks = 8
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Engines) == 0 {
		c.Engines = engine.Kinds()
	}
	if len(c.Modes) == 0 {
		c.Modes = PersistModes()
	}
	return c
}

// PersistPoint is one (engine, durability mode) measurement.
type PersistPoint struct {
	Engine engine.Kind
	Mode   string
	Blocks int
	Txs    int
	// Elapsed covers mining every block, including WAL appends, fsyncs
	// and snapshot writes as the mode dictates.
	Elapsed      time.Duration
	BlocksPerSec float64
	TxsPerSec    float64
	// WalBytes is the on-disk WAL+snapshot footprint after the run
	// (0 for the in-memory mode).
	WalBytes int64
	// WalBytesWritten is the framed bytes appended to the WAL; Fsyncs and
	// FsyncTime are the sync count and summed latency — the numbers that
	// say where a durable mode's time actually went.
	WalBytesWritten int64
	Fsyncs          int64
	FsyncTime       time.Duration
}

// MeasurePersistence runs one point: mine cfg.Blocks blocks on a single
// node under the given durability mode, in a throwaway data directory.
func MeasurePersistence(eng engine.Kind, mode PersistMode, cfg PersistenceConfig) (PersistPoint, error) {
	cfg = cfg.WithDefaults()
	totalTxs := cfg.Blocks * cfg.BlockSize
	wl, err := workload.Generate(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	})
	if err != nil {
		return PersistPoint{}, fmt.Errorf("bench: persistence workload: %w", err)
	}
	ncfg := node.Config{World: wl.World, Workers: cfg.Workers, Engine: eng}
	var dir string
	if mode.Durable {
		dir, err = os.MkdirTemp("", "persistbench-")
		if err != nil {
			return PersistPoint{}, fmt.Errorf("bench: persistence dir: %w", err)
		}
		defer os.RemoveAll(dir)
		ncfg.DataDir, ncfg.Persist = dir, mode.Opts
	}
	n, err := node.New(ncfg)
	if err != nil {
		return PersistPoint{}, fmt.Errorf("bench: persistence node: %w", err)
	}
	n.SubmitAll(wl.Calls)

	start := time.Now()
	for b := 0; b < cfg.Blocks; b++ {
		if _, err := n.MineOne(cfg.BlockSize); err != nil {
			return PersistPoint{}, fmt.Errorf("bench: persistence mine block %d (%v, %s): %w", b+1, eng, mode.Name, err)
		}
	}
	elapsed := time.Since(start)
	st := n.CurrentStatus()
	if err := n.Close(); err != nil {
		return PersistPoint{}, fmt.Errorf("bench: persistence close: %w", err)
	}

	pt := PersistPoint{
		Engine: eng, Mode: mode.Name, Blocks: cfg.Blocks, Txs: totalTxs, Elapsed: elapsed,
		WalBytesWritten: st.WalBytesWritten,
		Fsyncs:          st.WalFsyncs,
		FsyncTime:       time.Duration(st.WalFsyncMicros) * time.Microsecond,
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.BlocksPerSec = float64(cfg.Blocks) / s
		pt.TxsPerSec = float64(totalTxs) / s
	}
	if dir != "" {
		pt.WalBytes = dirSize(dir)
	}
	return pt, nil
}

// dirSize sums the file sizes under dir (best effort).
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// SweepPersistence measures every (engine, mode) combination.
func SweepPersistence(cfg PersistenceConfig) ([]PersistPoint, error) {
	cfg = cfg.WithDefaults()
	var out []PersistPoint
	for _, eng := range cfg.Engines {
		for _, mode := range cfg.Modes {
			pt, err := MeasurePersistence(eng, mode, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// WritePersistenceCSV emits every durability data point as CSV.
func WritePersistenceCSV(w io.Writer, points []PersistPoint) {
	fmt.Fprintln(w, "engine,mode,blocks,txs,elapsed_ns,blocks_per_sec,txs_per_sec,disk_bytes,wal_bytes_written,fsyncs,fsync_ns")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.2f,%.2f,%d,%d,%d,%d\n",
			p.Engine, p.Mode, p.Blocks, p.Txs, p.Elapsed.Nanoseconds(), p.BlocksPerSec, p.TxsPerSec,
			p.WalBytes, p.WalBytesWritten, p.Fsyncs, p.FsyncTime.Nanoseconds())
	}
}

// WritePersistenceSweep renders the durability sweep as an aligned table.
func WritePersistenceSweep(w io.Writer, cfg PersistenceConfig, points []PersistPoint) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "Persistence sweep [%s]: %d blocks × %d txs, %d%% conflict, wall-clock incl. disk\n",
		cfg.Kind, cfg.Blocks, cfg.BlockSize, cfg.ConflictPercent)
	fmt.Fprintf(w, "  %-13s %-11s %-12s %-12s %-12s %-10s %-10s %-8s %-11s\n",
		"engine", "mode", "elapsed", "blocks/s", "txs/s", "disk", "written", "fsyncs", "fsync-avg")
	for _, p := range points {
		disk, written, avg := "-", "-", "-"
		if p.WalBytes > 0 {
			disk = fmt.Sprintf("%.1f KiB", float64(p.WalBytes)/1024)
		}
		if p.WalBytesWritten > 0 {
			written = fmt.Sprintf("%.1f KiB", float64(p.WalBytesWritten)/1024)
		}
		if p.Fsyncs > 0 {
			avg = (p.FsyncTime / time.Duration(p.Fsyncs)).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-13s %-11s %-12s %-12.1f %-12.1f %-10s %-10s %-8d %-11s\n",
			p.Engine, p.Mode, p.Elapsed.Round(time.Millisecond), p.BlocksPerSec, p.TxsPerSec,
			disk, written, p.Fsyncs, avg)
	}
	fmt.Fprintln(w)
}
