package bench

import (
	"encoding/json"
	"fmt"
	"io"
)

// SLOCheck is one threshold from bench/slo_thresholds.json. Absent limits
// are not checked, so entries state only what they guard. Allocation
// limits are the strong ones — allocs/op is deterministic for a fixed
// workload — while time-based limits (ratios, ops/s floors) carry wide
// headroom because CI machines vary.
type SLOCheck struct {
	// Metric names the HotpathMetric under test.
	Metric string `json:"metric"`
	// Baseline, when set, names the metric the ns/op ratio is taken
	// against (Metric.ns / Baseline.ns must stay <= MaxNsRatio).
	Baseline   string   `json:"baseline,omitempty"`
	MaxNsRatio *float64 `json:"max_ns_ratio,omitempty"`

	MaxAllocsPerOp *int64   `json:"max_allocs_per_op,omitempty"`
	MaxBytesPerOp  *int64   `json:"max_bytes_per_op,omitempty"`
	MinOpsPerSec   *float64 `json:"min_ops_per_sec,omitempty"`
}

// SLOThresholds is the checked-in threshold file.
type SLOThresholds struct {
	Checks []SLOCheck `json:"checks"`
}

// ReadSLOThresholds decodes a threshold file, rejecting unknown fields so
// a typo in a limit name fails loudly instead of silently not checking.
func ReadSLOThresholds(r io.Reader) (SLOThresholds, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t SLOThresholds
	if err := dec.Decode(&t); err != nil {
		return SLOThresholds{}, fmt.Errorf("bench: thresholds: %w", err)
	}
	return t, nil
}

// CheckSLO evaluates every threshold against the report and returns one
// human-readable violation per failed limit (empty = all SLOs met). A
// missing metric or baseline is itself a violation: the artifact no longer
// measures what the threshold guards.
func CheckSLO(r HotpathReport, t SLOThresholds) []string {
	var violations []string
	for _, c := range t.Checks {
		m, ok := r.Metric(c.Metric)
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: metric missing from report", c.Metric))
			continue
		}
		if c.MaxAllocsPerOp != nil && m.AllocsPerOp > *c.MaxAllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op exceeds limit %d", c.Metric, m.AllocsPerOp, *c.MaxAllocsPerOp))
		}
		if c.MaxBytesPerOp != nil && m.BytesPerOp > *c.MaxBytesPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d B/op exceeds limit %d", c.Metric, m.BytesPerOp, *c.MaxBytesPerOp))
		}
		if c.MinOpsPerSec != nil && m.OpsPerSec < *c.MinOpsPerSec {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f ops/s below floor %.1f", c.Metric, m.OpsPerSec, *c.MinOpsPerSec))
		}
		if c.MaxNsRatio != nil {
			base, ok := r.Metric(c.Baseline)
			if !ok {
				violations = append(violations, fmt.Sprintf(
					"%s: baseline %q missing from report", c.Metric, c.Baseline))
				continue
			}
			if base.NsPerOp <= 0 {
				continue
			}
			if ratio := m.NsPerOp / base.NsPerOp; ratio > *c.MaxNsRatio {
				violations = append(violations, fmt.Sprintf(
					"%s: %.3fx the time of %s, limit %.3fx", c.Metric, ratio, c.Baseline, *c.MaxNsRatio))
			}
		}
	}
	return violations
}
