package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"sort"
	"testing"

	"contractstm/internal/api"
	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/mempool"
	"contractstm/internal/miner"
	"contractstm/internal/node"
	rt "contractstm/internal/runtime"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

func engineOptions(workers int) engine.Options {
	return engine.Options{Workers: workers}
}

// mineOnce executes one block production run on the deterministic
// simulated runtime; wall-clock time and allocations are what the SLO
// sweep measures, the virtual makespan is ignored.
func mineOnce(eng engine.Engine, wl *workload.Workload, parent chain.Header, opts engine.Options) (miner.Result, error) {
	return miner.Mine(eng, rt.NewSimRunner(), wl.World, parent, wl.Calls, opts)
}

// mineRepresentative seals the block the codec metrics encode and decode.
func mineRepresentative(p workload.Params, workers int) (chain.Block, error) {
	wl, err := workload.Generate(p)
	if err != nil {
		return chain.Block{}, fmt.Errorf("bench: generate: %w", err)
	}
	eng, err := engine.New(engine.KindOCC)
	if err != nil {
		return chain.Block{}, fmt.Errorf("bench: %w", err)
	}
	parent := chain.GenesisHeader(types.HashString("slo-genesis"))
	res, err := mineOnce(eng, wl, parent, engineOptions(workers))
	if err != nil {
		return chain.Block{}, fmt.Errorf("bench: representative block: %w", err)
	}
	return res.Block, nil
}

// SLOConfig tunes the hot-path SLO sweep. The defaults are what CI runs,
// so changing them invalidates bench/slo_thresholds.json.
type SLOConfig struct {
	// BlockSize is the number of transactions in the representative block.
	BlockSize int
	// ConflictPercent is the representative block's contention level.
	ConflictPercent int
	// Workers is the engine pool size.
	Workers int
	// Seed fixes workload generation so every run measures the same block.
	Seed int64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 128
	}
	if c.ConflictPercent <= 0 {
		c.ConflictPercent = 30
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// HotpathMetric is one measured hot-path operation.
type HotpathMetric struct {
	// Name identifies the operation, e.g. "codec/block/encode/flat" or
	// "engine/occ/mine".
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from the Go allocation counters.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// OpsPerSec is 1e9/NsPerOp — blocks/s for engine metrics.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// HotpathReport is the BENCH_hotpath.json artifact: the measured hot-path
// metrics for one configuration, compared by cmd/perfci against
// bench/slo_thresholds.json.
type HotpathReport struct {
	GoVersion       string          `json:"go_version"`
	GOMAXPROCS      int             `json:"gomaxprocs"`
	BlockSize       int             `json:"block_size"`
	ConflictPercent int             `json:"conflict_percent"`
	Workers         int             `json:"workers"`
	WireBytesFlat   int             `json:"wire_bytes_flat"`
	WireBytesGob    int             `json:"wire_bytes_gob"`
	Metrics         []HotpathMetric `json:"metrics"`
}

// Metric returns the named metric, if present.
func (r HotpathReport) Metric(name string) (HotpathMetric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return HotpathMetric{}, false
}

func metricOf(name string, br testing.BenchmarkResult) HotpathMetric {
	m := HotpathMetric{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if m.NsPerOp > 0 {
		m.OpsPerSec = 1e9 / m.NsPerOp
	}
	return m
}

// RunSLO measures the allocation-sensitive hot paths this repo's perf lane
// guards: block wire encode/decode under the flat codec and the legacy gob
// codec, and end-to-end block production per engine. Timings use
// testing.Benchmark, so each op count is auto-calibrated.
func RunSLO(cfg SLOConfig) (HotpathReport, error) {
	cfg = cfg.withDefaults()
	report := HotpathReport{
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		BlockSize:       cfg.BlockSize,
		ConflictPercent: cfg.ConflictPercent,
		Workers:         cfg.Workers,
	}

	// One representative mined block for the codec measurements: realistic
	// call/receipt/schedule/profile payloads rather than synthetic ones.
	params := workload.Params{
		Kind:            workload.KindMixed,
		Transactions:    cfg.BlockSize,
		ConflictPercent: cfg.ConflictPercent,
		Seed:            cfg.Seed,
	}
	block, err := mineRepresentative(params, cfg.Workers)
	if err != nil {
		return HotpathReport{}, err
	}

	flat, err := chain.MarshalBlock(block)
	if err != nil {
		return HotpathReport{}, fmt.Errorf("bench: flat marshal: %w", err)
	}
	gobBytes, err := chain.MarshalBlockGob(block)
	if err != nil {
		return HotpathReport{}, fmt.Errorf("bench: gob marshal: %w", err)
	}
	report.WireBytesFlat = len(flat)
	report.WireBytesGob = len(gobBytes)

	codecBenches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"codec/block/encode/flat", func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = chain.AppendBlockWire(buf[:0], block)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"codec/block/decode/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chain.UnmarshalBlock(flat); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"codec/block/encode/gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chain.MarshalBlockGob(block); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"codec/block/decode/gob", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chain.UnmarshalBlock(gobBytes); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, cb := range codecBenches {
		report.Metrics = append(report.Metrics, metricOf(cb.name, testing.Benchmark(cb.fn)))
	}

	// End-to-end block production per engine: generate-once, reset-and-mine
	// per op, like the paper's protocol but timed in wall-clock terms.
	for _, kind := range []engine.Kind{engine.KindSerial, engine.KindSpeculative, engine.KindOCC} {
		kind := kind
		eng, err := engine.New(kind)
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: %w", err)
		}
		wl, err := workload.Generate(params)
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: generate: %w", err)
		}
		parent := chain.GenesisHeader(types.HashString("slo-genesis"))
		opts := engineOptions(cfg.Workers)
		name := "engine/" + kind.String() + "/mine"
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wl.Reset()
				if _, err := mineOnce(eng, wl, parent, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Metrics = append(report.Metrics, metricOf(name, br))
	}

	// Follower import hot path: one full block validation per op — the
	// stateless phase (commitment verification + schedule-graph
	// construction) plus the stateful fork-join replay with receipt and
	// state-root checks. This is the per-block cost the staged import
	// pipeline's sequential commit stage pays, so a regression here slows
	// every follower's catch-up regardless of pipeline tuning.
	{
		wl, err := workload.Generate(params)
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: generate: %w", err)
		}
		eng, err := engine.New(engine.KindOCC)
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: %w", err)
		}
		parent := chain.GenesisHeader(types.HashString("slo-genesis"))
		res, err := mineOnce(eng, wl, parent, engineOptions(cfg.Workers))
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: import block: %w", err)
		}
		vcfg := validator.Config{Workers: cfg.Workers}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wl.Reset()
				if _, err := validator.Validate(rt.NewSimRunner(), wl.World, res.Block, vcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Metrics = append(report.Metrics, metricOf("import/validate", br))
	}

	// Admission hot path: one full admission-pipeline pass per op (TxID
	// hash, dedup probe, shard insert) with permissive limits, so the
	// number isolates the pipeline rather than verdict short-circuits.
	// The pool drains outside the timer whenever the call ring wraps, so
	// occupancy — and the dedup map — stays bounded and duplicate-free.
	{
		const ring = 1 << 15
		calls := make([]contract.Call, ring)
		for i := range calls {
			calls[i] = admissionCall(uint64(i), uint64(i))
		}
		pool := mempool.New(mempool.Config{})
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if i&(ring-1) == 0 {
					b.StopTimer()
					for {
						if _, err := pool.SelectBatch(txpool.PolicyFIFO, 4096); err != nil {
							break
						}
					}
					b.StartTimer()
				}
				pool.Admit(calls[i&(ring-1)], 0)
			}
		})
		report.Metrics = append(report.Metrics, metricOf("mempool/admit", br))
	}

	// Replica read hot path: one stamped-and-gated /v1/head read per op
	// through the full serving stack (mux, measure middleware, read
	// stamp, JSON encode) and the SDK, against an in-process listener —
	// the per-read CPU cost a read replica pays before wire latency.
	{
		wl, err := workload.Generate(params)
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: generate: %w", err)
		}
		n, err := node.New(node.Config{World: wl.World, Workers: cfg.Workers, Runner: rt.NewSimRunner()})
		if err != nil {
			return HotpathReport{}, fmt.Errorf("bench: replica read node: %w", err)
		}
		srv := httptest.NewServer(n.Handler())
		c := client.New(srv.URL)
		ctx := context.Background()
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Head(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		srv.Close()
		report.Metrics = append(report.Metrics, metricOf("replica/read", br))
	}

	// Relay fan-out hot path: one broker publish fanned out to 256
	// subscribers per op, drained inline — the per-event cost of the SSE
	// relay hub's local re-fan-out, independent of socket I/O.
	{
		const fanout = 256
		broker := api.NewBrokerRetaining(api.DefaultEventReplayDepth)
		subs := make([]*api.Subscription, fanout)
		for i := range subs {
			subs[i] = broker.Subscribe(1)
		}
		ev := wire.Event{Block: wire.BlockInfoOf(block), Receipts: wire.ReceiptsOf(block)}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				broker.Publish(ev)
				for _, s := range subs {
					<-s.C
				}
			}
		})
		for _, s := range subs {
			s.Close()
		}
		report.Metrics = append(report.Metrics, metricOf("relay/fanout", br))
	}

	sort.Slice(report.Metrics, func(i, j int) bool {
		return report.Metrics[i].Name < report.Metrics[j].Name
	})
	return report, nil
}

// ReadHotpathReport decodes a BENCH_hotpath.json artifact.
func ReadHotpathReport(r io.Reader) (HotpathReport, error) {
	var report HotpathReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return HotpathReport{}, fmt.Errorf("bench: hotpath report: %w", err)
	}
	return report, nil
}

// WriteHotpathJSON writes the report as indented JSON (the CI artifact).
func WriteHotpathJSON(w io.Writer, r HotpathReport) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteHotpathTable prints the report for humans.
func WriteHotpathTable(w io.Writer, r HotpathReport) {
	fmt.Fprintf(w, "hot-path SLO: block=%d conflict=%d%% workers=%d %s GOMAXPROCS=%d\n",
		r.BlockSize, r.ConflictPercent, r.Workers, r.GoVersion, r.GOMAXPROCS)
	fmt.Fprintf(w, "wire bytes: flat=%d gob=%d (%.2fx)\n\n",
		r.WireBytesFlat, r.WireBytesGob, float64(r.WireBytesGob)/float64(max(r.WireBytesFlat, 1)))
	fmt.Fprintf(w, "%-28s %14s %12s %12s %12s\n", "metric", "ns/op", "B/op", "allocs/op", "ops/s")
	for _, m := range r.Metrics {
		fmt.Fprintf(w, "%-28s %14.0f %12d %12d %12.1f\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.OpsPerSec)
	}
}
