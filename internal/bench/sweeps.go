package bench

import (
	"fmt"

	"contractstm/internal/engine"
	"contractstm/internal/stats"
	"contractstm/internal/workload"
)

// BlockSizes is the paper's block-size sweep: "blocks containing between
// 10 and 400 transactions with 15% data conflict".
var BlockSizes = []int{10, 25, 50, 100, 150, 200, 250, 300, 350, 400}

// ConflictPercents is the paper's conflict sweep: "blocks containing 200
// transactions with data conflict percentages ranging from 0% to 100%".
var ConflictPercents = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// SweepConflictFixed is the fixed conflict percentage of the block-size
// sweep (§7.1).
const SweepConflictFixed = 15

// SweepTransactionsFixed is the fixed block size of the conflict sweep:
// "the current theoretical maximum" of about 200 transactions (§7.1).
const SweepTransactionsFixed = 200

// DefaultSeed seeds all generated workloads.
const DefaultSeed int64 = 2017 // the paper's publication year

// Series is one benchmark's sweep: Points[i] corresponds to Xs[i].
type Series struct {
	Kind   workload.Kind
	XLabel string
	Xs     []int
	Points []Measurement
}

// Figure1 holds both charts of one benchmark's row in the paper's
// Figure 1: speedup over block size (left) and over conflict percentage
// (right).
type Figure1 struct {
	Kind      workload.Kind
	BlockSize Series
	Conflict  Series
}

// SweepBlockSize measures one benchmark across BlockSizes at 15% conflict.
func SweepBlockSize(kind workload.Kind, cfg Config, sizes []int) (Series, error) {
	if sizes == nil {
		sizes = BlockSizes
	}
	s := Series{Kind: kind, XLabel: "transactions", Xs: sizes}
	for _, n := range sizes {
		m, err := Measure(workload.Params{
			Kind: kind, Transactions: n,
			ConflictPercent: SweepConflictFixed, Seed: DefaultSeed,
		}, cfg)
		if err != nil {
			return Series{}, fmt.Errorf("bench: %v blocksize %d: %w", kind, n, err)
		}
		s.Points = append(s.Points, m)
	}
	return s, nil
}

// SweepConflict measures one benchmark across ConflictPercents at 200
// transactions.
func SweepConflict(kind workload.Kind, cfg Config, percents []int) (Series, error) {
	if percents == nil {
		percents = ConflictPercents
	}
	s := Series{Kind: kind, XLabel: "conflict%", Xs: percents}
	for _, c := range percents {
		m, err := Measure(workload.Params{
			Kind: kind, Transactions: SweepTransactionsFixed,
			ConflictPercent: c, Seed: DefaultSeed,
		}, cfg)
		if err != nil {
			return Series{}, fmt.Errorf("bench: %v conflict %d: %w", kind, c, err)
		}
		s.Points = append(s.Points, m)
	}
	return s, nil
}

// RunFigure1 produces one benchmark's Figure 1 row.
func RunFigure1(kind workload.Kind, cfg Config, sizes, percents []int) (Figure1, error) {
	bs, err := SweepBlockSize(kind, cfg, sizes)
	if err != nil {
		return Figure1{}, err
	}
	cs, err := SweepConflict(kind, cfg, percents)
	if err != nil {
		return Figure1{}, err
	}
	return Figure1{Kind: kind, BlockSize: bs, Conflict: cs}, nil
}

// Table1Row is one benchmark's column group in the paper's Table 1: the
// average speedups for each (variant, sweep) pair.
type Table1Row struct {
	Kind                  workload.Kind
	MinerConflictAvg      float64
	MinerBlockSizeAvg     float64
	ValidatorConflictAvg  float64
	ValidatorBlockSizeAvg float64
}

// Table1 is the paper's Table 1 plus the headline overall averages
// ("1.33x for the parallel miner and 1.69x for the validator").
type Table1 struct {
	Rows             []Table1Row
	OverallMiner     float64
	OverallValidator float64
}

// BuildTable1 derives Table 1 from the four benchmarks' Figure 1 data.
func BuildTable1(figs []Figure1) Table1 {
	var t Table1
	var allMiner, allValidator []float64
	for _, f := range figs {
		row := Table1Row{Kind: f.Kind}
		var mb, vb, mc, vc []float64
		for _, p := range f.BlockSize.Points {
			mb = append(mb, p.MinerSpeedup)
			vb = append(vb, p.ValidatorSpeedup)
		}
		for _, p := range f.Conflict.Points {
			mc = append(mc, p.MinerSpeedup)
			vc = append(vc, p.ValidatorSpeedup)
		}
		row.MinerBlockSizeAvg = stats.ArithMean(mb)
		row.ValidatorBlockSizeAvg = stats.ArithMean(vb)
		row.MinerConflictAvg = stats.ArithMean(mc)
		row.ValidatorConflictAvg = stats.ArithMean(vc)
		t.Rows = append(t.Rows, row)
		allMiner = append(allMiner, append(mb, mc...)...)
		allValidator = append(allValidator, append(vb, vc...)...)
	}
	t.OverallMiner = stats.ArithMean(allMiner)
	t.OverallValidator = stats.ArithMean(allValidator)
	return t
}

// RunAll produces Figure 1 for all four benchmarks and Table 1 from them.
// Passing nil sweeps uses the paper's full parameter grids.
func RunAll(cfg Config, sizes, percents []int) ([]Figure1, Table1, error) {
	var figs []Figure1
	for _, kind := range workload.Kinds() {
		f, err := RunFigure1(kind, cfg, sizes, percents)
		if err != nil {
			return nil, Table1{}, err
		}
		figs = append(figs, f)
	}
	return figs, BuildTable1(figs), nil
}

// EngineSeries is one engine's sweep of one benchmark: the miner speedup
// of that engine over the shared serial baseline, per x value.
type EngineSeries struct {
	Engine engine.Kind
	Series Series
}

// EngineComparison is one benchmark measured under every execution engine
// on the same sweep axis — the extensible-substrate counterpart of the
// paper's single-engine Figure 1.
type EngineComparison struct {
	Kind   workload.Kind
	XLabel string
	Xs     []int
	// Engines holds one series per engine, in engine.Kinds() order.
	Engines []EngineSeries
}

// SweepEnginesBlockSize measures one benchmark across block sizes (at the
// paper's fixed 15% conflict) under every execution engine.
func SweepEnginesBlockSize(kind workload.Kind, cfg Config, sizes []int) (EngineComparison, error) {
	if sizes == nil {
		sizes = BlockSizes
	}
	cmpr := EngineComparison{Kind: kind, XLabel: "transactions", Xs: sizes}
	for _, ek := range engine.Kinds() {
		ecfg := cfg
		ecfg.Engine = ek
		s, err := SweepBlockSize(kind, ecfg, sizes)
		if err != nil {
			return EngineComparison{}, fmt.Errorf("bench: engine %v: %w", ek, err)
		}
		cmpr.Engines = append(cmpr.Engines, EngineSeries{Engine: ek, Series: s})
	}
	return cmpr, nil
}

// SweepEnginesConflict measures one benchmark across conflict percentages
// (at the paper's fixed 200 transactions) under every execution engine.
func SweepEnginesConflict(kind workload.Kind, cfg Config, percents []int) (EngineComparison, error) {
	if percents == nil {
		percents = ConflictPercents
	}
	cmpr := EngineComparison{Kind: kind, XLabel: "conflict%", Xs: percents}
	for _, ek := range engine.Kinds() {
		ecfg := cfg
		ecfg.Engine = ek
		s, err := SweepConflict(kind, ecfg, percents)
		if err != nil {
			return EngineComparison{}, fmt.Errorf("bench: engine %v: %w", ek, err)
		}
		cmpr.Engines = append(cmpr.Engines, EngineSeries{Engine: ek, Series: s})
	}
	return cmpr, nil
}

// RunEngineComparison sweeps every benchmark under every engine on both
// axes.
func RunEngineComparison(cfg Config, sizes, percents []int) ([]EngineComparison, error) {
	var out []EngineComparison
	for _, kind := range workload.Kinds() {
		bs, err := SweepEnginesBlockSize(kind, cfg, sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, bs)
		cs, err := SweepEnginesConflict(kind, cfg, percents)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}
