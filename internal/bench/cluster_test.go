package bench

// Cluster sweep smoke test: a reduced end-to-end propagation sweep —
// miner node → HTTP broadcast → validating followers — per engine, so
// plain `go test ./...` exercises the multi-node measurement path.

import (
	"strings"
	"testing"
)

func TestClusterSweepSmoke(t *testing.T) {
	cfg := ClusterConfig{
		BlockSize:  12,
		Blocks:     2,
		PeerCounts: []int{1, 2},
	}
	points, err := SweepCluster(cfg)
	if err != nil {
		t.Fatalf("SweepCluster: %v", err)
	}
	wantPoints := len(cfg.WithDefaults().Engines) * len(cfg.PeerCounts)
	if len(points) != wantPoints {
		t.Fatalf("%d points, want %d", len(points), wantPoints)
	}
	for _, p := range points {
		if p.BlocksPerSec <= 0 || p.TxsPerSec <= 0 {
			t.Fatalf("%v/%d peers: throughput %f blocks/s, %f txs/s", p.Engine, p.Peers, p.BlocksPerSec, p.TxsPerSec)
		}
		if p.Blocks != cfg.Blocks || p.Txs != cfg.Blocks*cfg.BlockSize {
			t.Fatalf("%v/%d peers: counted %d blocks, %d txs", p.Engine, p.Peers, p.Blocks, p.Txs)
		}
	}
	var buf strings.Builder
	WriteClusterSweep(&buf, cfg, points)
	if !strings.Contains(buf.String(), "Cluster sweep") || !strings.Contains(buf.String(), "blocks/s") {
		t.Fatalf("report missing headings:\n%s", buf.String())
	}
}
