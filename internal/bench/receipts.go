package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"contractstm/internal/api/client"
	"contractstm/internal/api/wire"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/workload"
)

// The receipt sweep measures the client-visible confirmation latency of
// the /v1 API: the time from POST /v1/tx answering with a content-
// derived ID to GET /v1/tx/{id} reporting a durable committed/aborted
// receipt, while the node mines continuously under WAL-synced
// persistence. The pipeline-depth axis shows the trade the pipeline
// makes: deeper windows raise block throughput but delay the durability
// verdict a receipt waits on. Wall-clock by nature — the disk and the
// HTTP stack both sit on the measured path.

// ReceiptConfig tunes the receipt-latency sweep.
type ReceiptConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// BlockSize is transactions per block (default 64).
	BlockSize int
	// Blocks is how many blocks each point mines (default 8).
	Blocks int
	// Samples is how many transactions are tracked end to end through
	// the SDK per point (default 16, capped at the total).
	Samples int
	// ConflictPercent follows the ClusterConfig convention: 0 = default
	// (15), negative = conflict-free.
	ConflictPercent int
	// Workers is the node's pool size (default 3).
	Workers int
	// Seed makes workload generation deterministic (default DefaultSeed).
	Seed int64
	// Engines lists the engines to measure (default all).
	Engines []engine.Kind
	// Depths is the pipeline-depth axis (default 1, 4).
	Depths []int
}

// WithDefaults returns c with every unset field at its default.
func (c ReceiptConfig) WithDefaults() ReceiptConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.Blocks <= 0 {
		c.Blocks = 8
	}
	if c.Samples <= 0 {
		c.Samples = 16
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Engines) == 0 {
		c.Engines = engine.Kinds()
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 4}
	}
	return c
}

// ReceiptPoint is one (engine, depth) measurement.
type ReceiptPoint struct {
	Engine  engine.Kind
	Depth   int
	Blocks  int
	Txs     int
	Samples int
	// Latency quantiles over the sampled submit→durable-receipt times.
	MeanLatency time.Duration
	P50Latency  time.Duration
	MaxLatency  time.Duration
	// Elapsed covers mining every block and draining the pipeline;
	// BlocksPerSec attributes the latency to a throughput point.
	Elapsed      time.Duration
	BlocksPerSec float64
}

// MeasureReceipts runs one point: a durable node served over HTTP mines
// cfg.Blocks blocks while Samples transactions are submitted and awaited
// through the SDK — the full wire round-trip a real client sees.
func MeasureReceipts(eng engine.Kind, depth int, cfg ReceiptConfig) (ReceiptPoint, error) {
	cfg = cfg.WithDefaults()
	totalTxs := cfg.Blocks * cfg.BlockSize
	wl, err := workload.Generate(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	})
	if err != nil {
		return ReceiptPoint{}, fmt.Errorf("bench: receipt workload: %w", err)
	}
	dir, err := os.MkdirTemp("", "receiptbench-")
	if err != nil {
		return ReceiptPoint{}, fmt.Errorf("bench: receipt dir: %w", err)
	}
	defer os.RemoveAll(dir)

	n, err := node.New(node.Config{
		World: wl.World, Workers: cfg.Workers, Engine: eng,
		DataDir:       dir,
		Persist:       persist.Options{SyncEvery: 1, SnapshotEvery: -1},
		PipelineDepth: depth,
	})
	if err != nil {
		return ReceiptPoint{}, fmt.Errorf("bench: receipt node: %w", err)
	}
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()
	sdk := client.New(srv.URL)
	ctx := context.Background()

	// The sampled transactions go through POST /v1/tx (stamping their
	// submit time); the rest of the workload takes the bulk path.
	samples := cfg.Samples
	if samples > totalTxs {
		samples = totalTxs
	}
	stride := totalTxs / samples
	type tracked struct {
		id        string
		submitted time.Time
	}
	var tracks []tracked
	rest := wl.Calls[:0:0]
	for i, call := range wl.Calls {
		if len(tracks) < samples && i%stride == 0 {
			sub, err := sdk.SubmitCall(ctx, call)
			if err != nil {
				return ReceiptPoint{}, fmt.Errorf("bench: receipt submit: %w", err)
			}
			tracks = append(tracks, tracked{id: sub.ID, submitted: time.Now()})
			continue
		}
		rest = append(rest, call)
	}
	n.SubmitAll(rest)

	// Mine while the waiter collects receipts concurrently — the receipt
	// becomes visible only at the durability verdict, which on depth > 1
	// trails the seal by up to the window size.
	type waitResult struct {
		latencies []time.Duration
		err       error
	}
	done := make(chan waitResult, 1)
	go func() {
		var res waitResult
		for _, tr := range tracks {
			rec, err := sdk.WaitReceipt(ctx, tr.id, time.Millisecond)
			if err != nil {
				res.err = fmt.Errorf("bench: receipt wait %s: %w", tr.id, err)
				break
			}
			if rec.Status == wire.StatusPending {
				res.err = fmt.Errorf("bench: receipt %s still pending", tr.id)
				break
			}
			res.latencies = append(res.latencies, time.Since(tr.submitted))
		}
		done <- res
	}()

	start := time.Now()
	if _, err := n.MinePipelined(cfg.Blocks, cfg.BlockSize); err != nil {
		return ReceiptPoint{}, fmt.Errorf("bench: receipt mine (%v depth %d): %w", eng, depth, err)
	}
	elapsed := time.Since(start)
	waited := <-done
	if waited.err != nil {
		return ReceiptPoint{}, waited.err
	}
	if err := n.Close(); err != nil {
		return ReceiptPoint{}, fmt.Errorf("bench: receipt close: %w", err)
	}

	pt := ReceiptPoint{
		Engine: eng, Depth: depth, Blocks: cfg.Blocks, Txs: totalTxs,
		Samples: len(waited.latencies), Elapsed: elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.BlocksPerSec = float64(cfg.Blocks) / s
	}
	if len(waited.latencies) > 0 {
		lat := waited.latencies
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		pt.MeanLatency = sum / time.Duration(len(lat))
		pt.P50Latency = lat[len(lat)/2]
		pt.MaxLatency = lat[len(lat)-1]
	}
	return pt, nil
}

// SweepReceipts measures every engine at every pipeline depth.
func SweepReceipts(cfg ReceiptConfig) ([]ReceiptPoint, error) {
	cfg = cfg.WithDefaults()
	var out []ReceiptPoint
	for _, eng := range cfg.Engines {
		for _, depth := range cfg.Depths {
			pt, err := MeasureReceipts(eng, depth, cfg)
			if err != nil {
				return out, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// WriteReceiptSweep renders the sweep as a table.
func WriteReceiptSweep(w io.Writer, cfg ReceiptConfig, points []ReceiptPoint) {
	cfg = cfg.WithDefaults()
	fmt.Fprintf(w, "Receipt latency (submit → durable receipt over /v1, %d blocks × %d txs, %d%% conflict, wal-sync)\n",
		cfg.Blocks, cfg.BlockSize, cfg.ConflictPercent)
	fmt.Fprintf(w, "%-12s %6s %8s %10s %10s %10s %9s\n",
		"engine", "depth", "samples", "mean", "p50", "max", "blk/s")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %6d %8d %10s %10s %10s %9.1f\n",
			p.Engine, p.Depth, p.Samples,
			p.MeanLatency.Round(time.Microsecond),
			p.P50Latency.Round(time.Microsecond),
			p.MaxLatency.Round(time.Microsecond),
			p.BlocksPerSec)
	}
	fmt.Fprintln(w)
}

// WriteReceiptCSV emits the sweep's data points as CSV.
func WriteReceiptCSV(w io.Writer, points []ReceiptPoint) {
	fmt.Fprintln(w, "engine,depth,blocks,txs,samples,mean_us,p50_us,max_us,blocks_per_sec")
	for _, p := range points {
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
			p.Engine, p.Depth, p.Blocks, p.Txs, p.Samples,
			p.MeanLatency.Microseconds(), p.P50Latency.Microseconds(),
			p.MaxLatency.Microseconds(), p.BlocksPerSec)
	}
}
