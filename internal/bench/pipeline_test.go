package bench

// Pipeline sweep smoke test: a tiny depth matrix, so plain
// `go test ./...` exercises the staged production path — pipelined node,
// group-commit writer, drain — end to end against a real disk.

import (
	"bytes"
	"strings"
	"testing"

	"contractstm/internal/engine"
)

func TestPipelineSweepSmoke(t *testing.T) {
	cfg := PipelineConfig{
		Blocks: 3, BlockSize: 8, Workers: 2,
		Engines: []engine.Kind{engine.KindSerial},
		Depths:  []int{1, 2},
	}
	points, err := SweepPipeline(cfg)
	if err != nil {
		t.Fatalf("SweepPipeline: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, p := range points {
		if p.BlocksPerSec <= 0 || p.TxsPerSec <= 0 {
			t.Fatalf("%v/depth %d: non-positive throughput", p.Engine, p.Depth)
		}
		if p.WalBytes == 0 || p.Fsyncs == 0 {
			t.Fatalf("%v/depth %d: WAL-synced run reported no disk work", p.Engine, p.Depth)
		}
	}
	// Depth 1 fsyncs once per block; any deeper depth may only batch.
	if points[0].Fsyncs != int64(cfg.Blocks) {
		t.Fatalf("depth 1 made %d fsyncs, want %d", points[0].Fsyncs, cfg.Blocks)
	}
	if points[1].Fsyncs > points[0].Fsyncs {
		t.Fatalf("depth 2 made more fsyncs (%d) than depth 1 (%d)", points[1].Fsyncs, points[0].Fsyncs)
	}

	var table, csv bytes.Buffer
	WritePipelineSweep(&table, cfg, points)
	if !strings.Contains(table.String(), "Pipeline sweep") {
		t.Fatal("table output missing header")
	}
	WritePipelineCSV(&csv, points)
	if got := strings.Count(csv.String(), "\n"); got != len(points)+1 {
		t.Fatalf("CSV has %d lines, want %d", got, len(points)+1)
	}
}

func TestDepthsUpTo(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{0, []int{1}},
	} {
		got := DepthsUpTo(tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("DepthsUpTo(%d) = %v, want %v", tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("DepthsUpTo(%d) = %v, want %v", tc.max, got, tc.want)
			}
		}
	}
}
