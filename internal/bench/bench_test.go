package bench

import (
	"strings"
	"testing"

	"contractstm/internal/stm"
	"contractstm/internal/workload"
)

// smallCfg keeps unit tests fast.
func smallCfg() Config { return Config{Workers: 3, Runs: 1} }

func TestMeasureProducesSpeedups(t *testing.T) {
	m, err := Measure(workload.Params{
		Kind: workload.KindBallot, Transactions: 60, ConflictPercent: 15, Seed: DefaultSeed,
	}, smallCfg())
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if m.MinerSpeedup <= 0 || m.ValidatorSpeedup <= 0 {
		t.Fatalf("speedups = %f/%f", m.MinerSpeedup, m.ValidatorSpeedup)
	}
	if m.SerialTime.N() != 1 || m.MinerTime.N() != 1 || m.ValidatorTime.N() != 1 {
		t.Fatalf("expected exactly one measured run, got %d/%d/%d",
			m.SerialTime.N(), m.MinerTime.N(), m.ValidatorTime.N())
	}
}

func TestMeasureDeterministic(t *testing.T) {
	p := workload.Params{Kind: workload.KindMixed, Transactions: 45, ConflictPercent: 30, Seed: DefaultSeed}
	m1, err := Measure(p, smallCfg())
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	m2, _ := Measure(p, smallCfg())
	if m1.MinerSpeedup != m2.MinerSpeedup || m1.ValidatorSpeedup != m2.ValidatorSpeedup {
		t.Fatalf("nondeterministic measurements: %+v vs %+v", m1, m2)
	}
}

func TestMeasureMultipleRunsZeroVariance(t *testing.T) {
	// Virtual time is exact: repeated runs must agree to the unit.
	m, err := Measure(workload.Params{
		Kind: workload.KindBallot, Transactions: 30, ConflictPercent: 15, Seed: DefaultSeed,
	}, Config{Workers: 3, Runs: 3})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if m.SerialTime.StdDev() != 0 || m.MinerTime.StdDev() != 0 || m.ValidatorTime.StdDev() != 0 {
		t.Fatalf("virtual-time stddev nonzero: %f/%f/%f",
			m.SerialTime.StdDev(), m.MinerTime.StdDev(), m.ValidatorTime.StdDev())
	}
}

func TestMeasureLazyPolicy(t *testing.T) {
	m, err := Measure(workload.Params{
		Kind: workload.KindBallot, Transactions: 40, ConflictPercent: 15, Seed: DefaultSeed,
	}, Config{Workers: 3, Policy: stm.PolicyLazy})
	if err != nil {
		t.Fatalf("Measure lazy: %v", err)
	}
	if m.MinerSpeedup <= 0 {
		t.Fatal("lazy policy produced no measurement")
	}
}

func TestSweepAndTable1(t *testing.T) {
	sizes := []int{10, 40}
	percents := []int{0, 100}
	figs, table, err := RunAll(smallCfg(), sizes, percents)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(figs) != 4 || len(table.Rows) != 4 {
		t.Fatalf("figs=%d rows=%d", len(figs), len(table.Rows))
	}
	for _, f := range figs {
		if len(f.BlockSize.Points) != len(sizes) || len(f.Conflict.Points) != len(percents) {
			t.Fatalf("%v: wrong point counts", f.Kind)
		}
	}
	if table.OverallMiner <= 0 || table.OverallValidator <= 0 {
		t.Fatalf("overall averages: %f/%f", table.OverallMiner, table.OverallValidator)
	}
	// The paper's headline relationship: validators outperform miners.
	if table.OverallValidator <= table.OverallMiner {
		t.Fatalf("validator avg %.2f <= miner avg %.2f; the paper's headline relation is violated",
			table.OverallValidator, table.OverallMiner)
	}
}

func TestReports(t *testing.T) {
	figs, table, err := RunAll(smallCfg(), []int{20}, []int{50})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var sb strings.Builder
	WriteTable1(&sb, table)
	out := sb.String()
	for _, want := range []string{"Table 1", "Miner", "Validator", "Ballot", "SimpleAuction", "EtherDoc", "Mixed", "Overall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteFigure1(&sb, figs[0])
	if !strings.Contains(sb.String(), "Figure 1 [Ballot]") {
		t.Fatalf("figure output:\n%s", sb.String())
	}
	sb.Reset()
	WriteAppendixB(&sb, figs[0], TimeUnit(ModeSim))
	if !strings.Contains(sb.String(), "Appendix B [Ballot]") || !strings.Contains(sb.String(), "±") {
		t.Fatalf("appendix output:\n%s", sb.String())
	}
	sb.Reset()
	WriteCSV(&sb, figs)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + 4 benchmarks x (1 size + 1 conflict) points
	if len(lines) != 1+4*2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "benchmark,sweep,x,") {
		t.Fatalf("csv header: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 14 {
			t.Fatalf("csv row has wrong arity: %s", l)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 3 || c.Mode != ModeSim || c.Runs != 1 || c.Policy != stm.PolicyEager {
		t.Fatalf("defaults = %+v", c)
	}
	if c.InterferencePerMille != DefaultInterferencePerMille {
		t.Fatalf("interference default = %d", c.InterferencePerMille)
	}
	real := Config{Mode: ModeReal}.withDefaults()
	if real.Runs != 5 || real.Warmups != 3 {
		t.Fatalf("real-mode defaults = %+v", real)
	}
	ideal := Config{InterferencePerMille: -1}.withDefaults()
	if ideal.InterferencePerMille != 0 {
		t.Fatalf("negative interference should mean ideal cores, got %d", ideal.InterferencePerMille)
	}
}

func TestTimeUnit(t *testing.T) {
	if TimeUnit(ModeSim) != "gas-time" || TimeUnit(ModeReal) != "ns" {
		t.Fatal("time units wrong")
	}
	if ModeSim.String() != "sim" || ModeReal.String() != "real" || Mode(9).String() == "" {
		t.Fatal("mode strings wrong")
	}
}
