package bench

// The admission sweep measures the ingest path the sharded mempool was
// built for: sustained block production while a million distinct
// accounts submit through admission control and an adversarial flooder
// hammers the same pool from a single sender. Three questions, three
// numbers: how much submit throughput sharding buys (single-shard vs
// sharded parallel submits), how much block throughput a flood costs
// (baseline vs flooded blocks/s), and how little of the flood gets in
// (flooder acceptance rate under per-sender caps).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"contractstm/internal/contract"
	"contractstm/internal/mempool"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

// AdmissionConfig tunes the admission sweep. The zero value selects the
// full-scale run CI's -quick lane scales down.
type AdmissionConfig struct {
	// Senders is the honest account population; each submits exactly one
	// transaction (default 1,000,000).
	Senders int
	// BlockSize is the selection size per drained block (default 256).
	BlockSize int
	// Shards is the sharded pool's shard count (default 16). The
	// single-shard submit phase always uses 1.
	Shards int
	// PerSenderSlots caps queued transactions per sender (default 16).
	PerSenderSlots int
	// RatePerSec and Burst are the per-sender token bucket (default
	// 1000/s, burst 64) — generous for one-shot honest senders, a hard
	// wall for the flooder.
	RatePerSec float64
	Burst      int
	// MaxShardEntries bounds per-shard occupancy (default 4096): it is
	// the submit-ahead window that keeps a million-transaction run in
	// bounded memory, with feeders retrying on shard_saturated
	// back-pressure exactly as a real client would.
	MaxShardEntries int
	// SubmitOps is the per-pool operation count of the submit-throughput
	// phase (default 200,000).
	SubmitOps int
	// Feeders is the number of honest submitter goroutines (default 4).
	Feeders int
	// FlooderRate paces the adversarial flooder's submission attempts
	// per second (default 20,000 — hundreds of times one sender's
	// admission allowance). Pacing, rather than a free-spinning loop,
	// keeps the measured quantity "what a flood does to the pool" and
	// not "what a busy loop does to a shared CPU".
	FlooderRate float64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Senders <= 0 {
		c.Senders = 1_000_000
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.PerSenderSlots <= 0 {
		c.PerSenderSlots = 16
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 1000
	}
	if c.Burst <= 0 {
		c.Burst = 64
	}
	if c.MaxShardEntries <= 0 {
		c.MaxShardEntries = 4096
	}
	if c.SubmitOps <= 0 {
		c.SubmitOps = 200_000
	}
	if c.Feeders <= 0 {
		c.Feeders = 4
	}
	if c.FlooderRate <= 0 {
		c.FlooderRate = 20_000
	}
	return c
}

// AdmissionReport is the BENCH_admission.json artifact.
type AdmissionReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Senders    int    `json:"senders"`
	BlockSize  int    `json:"block_size"`
	Shards     int    `json:"shards"`

	// Parallel submit throughput, admissions per second, into a pool with
	// one shard versus the configured shard count.
	SubmitOpsPerSecSingleShard float64 `json:"submit_ops_per_sec_single_shard"`
	SubmitOpsPerSecSharded     float64 `json:"submit_ops_per_sec_sharded"`
	ShardingSpeedup            float64 `json:"sharding_speedup"`

	// Sustained selection throughput draining the honest population,
	// without and with the flooder, and their ratio (flooded/baseline —
	// the acceptance bar is >= 0.9).
	BaselineBlocksPerSec float64 `json:"baseline_blocks_per_sec"`
	FloodedBlocksPerSec  float64 `json:"flooded_blocks_per_sec"`
	FloodedRatio         float64 `json:"flooded_ratio"`

	// The flood, from the flooder's side: submissions attempted, how many
	// admission let through, and the acceptance rate (capped by the
	// per-sender slot and rate limits, not by honest traffic).
	FlooderSubmitted int64   `json:"flooder_submitted"`
	FlooderAdmitted  int64   `json:"flooder_admitted"`
	FlooderAccepted  float64 `json:"flooder_acceptance_rate"`

	// FloodedStats is the pool's verdict accounting after the flooded
	// run: the shed traffic itemized.
	FloodedStats mempool.StatsSnapshot `json:"flooded_stats"`
}

// admissionCall synthesizes the i-th unique transfer-shaped call for
// sender id. Distinct (sender, recipient) pairs give distinct
// content-derived TxIDs, so dedup never confuses two submissions.
func admissionCall(sender, nonce uint64) contract.Call {
	return contract.Call{
		Sender:   types.AddressFromUint64(0xF100D_0000 + sender),
		Contract: types.AddressFromUint64(0xC0DE_F100D),
		Function: "transfer",
		Args:     []any{types.AddressFromUint64(0x7000_0000 + nonce), uint64(3)},
		GasLimit: 1_000_000,
	}
}

// submitThroughput measures parallel trusted-rate admissions/s into a
// pool with the given shard count: every worker submits distinct-sender
// calls through the full admission pipeline with permissive limits, so
// the number isolates the sharding (lock contention), not the verdicts.
func submitThroughput(shards, total, workers int) float64 {
	pool := mempool.New(mempool.Config{Shards: shards})
	per := total / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w * per)
			for i := 0; i < per; i++ {
				pool.Admit(admissionCall(base+uint64(i), base+uint64(i)), 0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(per*workers) / elapsed.Seconds()
}

// drainRun pushes one transaction from each of cfg.Senders honest
// accounts through admission while a drain loop selects blocks, and
// (optionally) an adversarial flooder spams from a single sender the
// whole time. It returns the sustained blocks/s and the flooder's
// submitted/admitted counts.
func drainRun(cfg AdmissionConfig, flood bool) (blocksPerSec float64, pool *mempool.Pool, submitted, admitted int64) {
	pool = mempool.New(mempool.Config{
		Shards:          cfg.Shards,
		PerSenderSlots:  cfg.PerSenderSlots,
		RatePerSec:      cfg.RatePerSec,
		Burst:           cfg.Burst,
		MaxShardEntries: cfg.MaxShardEntries,
		Now:             time.Now,
	})

	var next atomic.Int64
	var feeders sync.WaitGroup
	for f := 0; f < cfg.Feeders; f++ {
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Senders) {
					return
				}
				call := admissionCall(uint64(i), uint64(i))
				// shard_saturated is the submit-ahead window pushing back;
				// yield and retry like a well-behaved client.
				for pool.Admit(call, 0).Verdict == mempool.VerdictShardSaturated {
					runtime.Gosched()
				}
			}
		}()
	}

	floodDone := make(chan struct{})
	var flooder sync.WaitGroup
	if flood {
		flooder.Add(1)
		go func() {
			defer flooder.Done()
			// Submit in bursts, sleeping the burst's share of the pacing
			// rate between them.
			const burst = 64
			pause := time.Duration(float64(burst) / cfg.FlooderRate * float64(time.Second))
			var nonce uint64
			for {
				for i := 0; i < burst; i++ {
					d := pool.Admit(admissionCall(1<<40, nonce), 1)
					nonce++
					submitted++
					if d.Verdict.Admitted() {
						admitted++
					}
				}
				select {
				case <-floodDone:
					return
				case <-time.After(pause):
				}
			}
		}()
	}

	feedersDone := make(chan struct{})
	go func() { feeders.Wait(); close(feedersDone) }()

	blocks := 0
	start := time.Now()
	for {
		_, err := pool.SelectBatch(txpool.PolicyFIFO, cfg.BlockSize)
		if err != nil {
			select {
			case <-feedersDone:
				// Feeders finished and the pool is empty apart from, at
				// most, the flooder's trickle: the honest population is
				// drained.
				elapsed := time.Since(start)
				close(floodDone)
				flooder.Wait()
				return float64(blocks) / elapsed.Seconds(), pool, submitted, admitted
			default:
				runtime.Gosched()
				continue
			}
		}
		blocks++
	}
}

// RunAdmission runs the admission sweep.
func RunAdmission(cfg AdmissionConfig) (AdmissionReport, error) {
	cfg = cfg.withDefaults()
	report := AdmissionReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Senders:    cfg.Senders,
		BlockSize:  cfg.BlockSize,
		Shards:     cfg.Shards,
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	report.SubmitOpsPerSecSingleShard = submitThroughput(1, cfg.SubmitOps, workers)
	report.SubmitOpsPerSecSharded = submitThroughput(cfg.Shards, cfg.SubmitOps, workers)
	if report.SubmitOpsPerSecSingleShard > 0 {
		report.ShardingSpeedup = report.SubmitOpsPerSecSharded / report.SubmitOpsPerSecSingleShard
	}

	baseline, _, _, _ := drainRun(cfg, false)
	report.BaselineBlocksPerSec = baseline
	flooded, pool, submitted, admitted := drainRun(cfg, true)
	report.FloodedBlocksPerSec = flooded
	if baseline > 0 {
		report.FloodedRatio = flooded / baseline
	}
	report.FlooderSubmitted = submitted
	report.FlooderAdmitted = admitted
	if submitted > 0 {
		report.FlooderAccepted = float64(admitted) / float64(submitted)
	}
	report.FloodedStats = pool.Stats()
	return report, nil
}

// WriteAdmissionJSON writes the report as indented JSON (the CI
// artifact).
func WriteAdmissionJSON(w io.Writer, r AdmissionReport) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteAdmissionTable prints the report for humans.
func WriteAdmissionTable(w io.Writer, r AdmissionReport) {
	fmt.Fprintf(w, "admission sweep: senders=%d block=%d shards=%d %s GOMAXPROCS=%d\n\n",
		r.Senders, r.BlockSize, r.Shards, r.GoVersion, r.GOMAXPROCS)
	fmt.Fprintf(w, "submit throughput: 1 shard %12.0f admits/s\n", r.SubmitOpsPerSecSingleShard)
	fmt.Fprintf(w, "                   %d shards %11.0f admits/s (%.2fx)\n",
		r.Shards, r.SubmitOpsPerSecSharded, r.ShardingSpeedup)
	fmt.Fprintf(w, "blocks/s:          baseline %11.1f\n", r.BaselineBlocksPerSec)
	fmt.Fprintf(w, "                   flooded  %11.1f (%.2fx of baseline)\n",
		r.FloodedBlocksPerSec, r.FloodedRatio)
	fmt.Fprintf(w, "flooder:           %d submitted, %d admitted (%.4f%% acceptance)\n",
		r.FlooderSubmitted, r.FlooderAdmitted, 100*r.FlooderAccepted)
}
