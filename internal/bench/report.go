package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable1 renders Table 1 in the paper's layout:
//
//	            SimpleAuction    Ballot    EtherDoc    Mixed
//	            Conflict BlockSize ...
//	Miner       ...
//	Validator   ...
//
// (Our row order follows workload.Kinds(): Ballot, SimpleAuction,
// EtherDoc, Mixed; the header names make the mapping unambiguous.)
func WriteTable1(w io.Writer, t Table1) {
	fmt.Fprintf(w, "Table 1: average speedups for each benchmark\n")
	fmt.Fprintf(w, "%-11s", "")
	for _, row := range t.Rows {
		fmt.Fprintf(w, " | %-21s", row.Kind)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "")
	for range t.Rows {
		fmt.Fprintf(w, " | %-10s %-10s", "Conflict", "BlockSize")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 12+len(t.Rows)*24))
	fmt.Fprintf(w, "%-11s", "Miner")
	for _, row := range t.Rows {
		fmt.Fprintf(w, " | %-10s %-10s", speedupStr(row.MinerConflictAvg), speedupStr(row.MinerBlockSizeAvg))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "Validator")
	for _, row := range t.Rows {
		fmt.Fprintf(w, " | %-10s %-10s", speedupStr(row.ValidatorConflictAvg), speedupStr(row.ValidatorBlockSizeAvg))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nOverall averages: miner %s, validator %s (paper: 1.33x / 1.69x)\n",
		speedupStr(t.OverallMiner), speedupStr(t.OverallValidator))
}

func speedupStr(v float64) string { return fmt.Sprintf("%.2fx", v) }

// WriteFigure1 renders one benchmark's Figure 1 row as aligned columns
// (the paper plots these as two charts per benchmark).
func WriteFigure1(w io.Writer, f Figure1) {
	fmt.Fprintf(w, "Figure 1 [%s]: speedup over block size (%d%% conflict)\n", f.Kind, SweepConflictFixed)
	writeSeries(w, f.BlockSize)
	fmt.Fprintf(w, "Figure 1 [%s]: speedup over conflict%% (%d transactions)\n", f.Kind, SweepTransactionsFixed)
	writeSeries(w, f.Conflict)
}

func writeSeries(w io.Writer, s Series) {
	fmt.Fprintf(w, "  %-13s %-10s %-12s %-8s %-7s %-9s\n",
		s.XLabel, "miner", "validator", "retries", "edges", "critpath")
	for i, x := range s.Xs {
		p := s.Points[i]
		fmt.Fprintf(w, "  %-13d %-10s %-12s %-8d %-7d %-9d\n",
			x, speedupStr(p.MinerSpeedup), speedupStr(p.ValidatorSpeedup),
			p.Retries, p.Edges, p.CriticalPath)
	}
	fmt.Fprintln(w)
}

// WriteAppendixB renders the running-time charts of Appendix B: mean and
// standard deviation per variant, in the mode's time unit.
func WriteAppendixB(w io.Writer, f Figure1, unit string) {
	fmt.Fprintf(w, "Appendix B [%s]: running times over block size (%d%% conflict), unit=%s\n",
		f.Kind, SweepConflictFixed, unit)
	writeTimes(w, f.BlockSize)
	fmt.Fprintf(w, "Appendix B [%s]: running times over conflict%% (%d transactions), unit=%s\n",
		f.Kind, SweepTransactionsFixed, unit)
	writeTimes(w, f.Conflict)
}

func writeTimes(w io.Writer, s Series) {
	fmt.Fprintf(w, "  %-13s %-22s %-22s %-22s\n", s.XLabel, "serial", "miner", "validator")
	for i, x := range s.Xs {
		p := s.Points[i]
		fmt.Fprintf(w, "  %-13d %-22s %-22s %-22s\n", x,
			p.SerialTime.Summary(0), p.MinerTime.Summary(0), p.ValidatorTime.Summary(0))
	}
	fmt.Fprintln(w)
}

// WriteCSV emits every data point of the given figures as CSV, one row per
// (benchmark, sweep, x): machine-readable companion to the ASCII reports.
func WriteCSV(w io.Writer, figs []Figure1) {
	fmt.Fprintln(w, "benchmark,sweep,x,serial_mean,serial_stddev,miner_mean,miner_stddev,validator_mean,validator_stddev,miner_speedup,validator_speedup,retries,edges,critical_path")
	for _, f := range figs {
		for _, pair := range []struct {
			name string
			s    Series
		}{{"blocksize", f.BlockSize}, {"conflict", f.Conflict}} {
			for i, x := range pair.s.Xs {
				p := pair.s.Points[i]
				fmt.Fprintf(w, "%s,%s,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.4f,%.4f,%d,%d,%d\n",
					f.Kind, pair.name, x,
					p.SerialTime.Mean(), p.SerialTime.StdDev(),
					p.MinerTime.Mean(), p.MinerTime.StdDev(),
					p.ValidatorTime.Mean(), p.ValidatorTime.StdDev(),
					p.MinerSpeedup, p.ValidatorSpeedup,
					p.Retries, p.Edges, p.CriticalPath)
			}
		}
	}
}

// WriteEngineComparison renders one benchmark's sweep under every engine:
// per x value, each engine's miner speedup over the shared serial
// baseline, plus the contention signal that explains it (retries for the
// lock-based engine, re-execution rounds for OCC).
func WriteEngineComparison(w io.Writer, c EngineComparison) {
	fmt.Fprintf(w, "Engine comparison [%s]: miner speedup over %s\n", c.Kind, c.XLabel)
	fmt.Fprintf(w, "  %-13s", c.XLabel)
	for _, es := range c.Engines {
		fmt.Fprintf(w, " %-24s", es.Engine)
	}
	fmt.Fprintln(w)
	for i, x := range c.Xs {
		fmt.Fprintf(w, "  %-13d", x)
		for _, es := range c.Engines {
			p := es.Series.Points[i]
			fmt.Fprintf(w, " %-8s r=%-5d rnd=%-5d", speedupStr(p.MinerSpeedup), p.Retries, p.Rounds)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteEngineCSV emits every engine-comparison data point as CSV.
func WriteEngineCSV(w io.Writer, cmps []EngineComparison) {
	fmt.Fprintln(w, "benchmark,sweep,engine,x,serial_mean,miner_mean,miner_speedup,retries,rounds")
	for _, c := range cmps {
		for _, es := range c.Engines {
			for i, x := range c.Xs {
				p := es.Series.Points[i]
				fmt.Fprintf(w, "%s,%s,%s,%d,%.1f,%.1f,%.4f,%d,%d\n",
					c.Kind, c.XLabel, es.Engine, x,
					p.SerialTime.Mean(), p.MinerTime.Mean(),
					p.MinerSpeedup, p.Retries, p.Rounds)
			}
		}
	}
}

// TimeUnit names the duration unit of a mode.
func TimeUnit(m Mode) string {
	if m == ModeReal {
		return "ns"
	}
	return "gas-time"
}
