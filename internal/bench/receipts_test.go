package bench

import (
	"testing"

	"contractstm/internal/engine"
)

// TestReceiptSweepSmoke: a tiny receipt-latency sweep completes on the
// synchronous and pipelined paths and measures something non-zero.
func TestReceiptSweepSmoke(t *testing.T) {
	cfg := ReceiptConfig{
		Blocks: 2, BlockSize: 8, Samples: 4,
		Engines: []engine.Kind{engine.KindSerial},
		Depths:  []int{1, 2},
	}
	points, err := SweepReceipts(cfg)
	if err != nil {
		t.Fatalf("SweepReceipts: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Samples != 4 {
			t.Fatalf("depth %d tracked %d samples, want 4", p.Depth, p.Samples)
		}
		if p.MeanLatency <= 0 || p.MaxLatency < p.P50Latency {
			t.Fatalf("degenerate latencies: %+v", p)
		}
	}
}
