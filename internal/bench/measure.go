// Package bench is the evaluation harness: it reproduces every table and
// figure of the paper's §7 on top of the deterministic simulated-time
// runtime (see DESIGN.md for the substitution rationale) and, optionally,
// on real OS threads.
//
// Protocol, mirroring §7.2: for each benchmark and parameter combination,
// a block is generated once; the serial miner, the parallel miner (3
// workers) and the validator (3 workers) each run it from the same initial
// state; speedup is serial time divided by the variant's time. The paper
// takes 3 warm-up runs and 5 measured runs because JVM timings are noisy;
// simulated virtual time is exact, so by default one measured run suffices
// and the standard deviation is zero (configurable for real-time mode).
package bench

import (
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/engine"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stats"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

// Mode selects the time base.
type Mode int

const (
	// ModeSim measures deterministic virtual time (gas units) on the
	// discrete-event simulator. This is the default and what EXPERIMENTS.md
	// reports.
	ModeSim Mode = iota + 1
	// ModeReal measures wall-clock nanoseconds on OS threads with a
	// calibrated CPU burn per gas unit. Only meaningful on multi-core
	// hosts.
	ModeReal
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSim:
		return "sim"
	case ModeReal:
		return "real"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config tunes the harness.
type Config struct {
	// Workers is the pool size for both miner and validator (paper: 3).
	Workers int
	// Runs is the number of measured repetitions (paper: 5; sim default 1).
	Runs int
	// Warmups is the number of unmeasured repetitions (paper: 3; sim
	// default 0 — virtual time has no warm-up effects).
	Warmups int
	// Mode selects simulated or real time.
	Mode Mode
	// Policy selects the speculative write policy (default eager).
	Policy stm.Policy
	// BurnFactor calibrates ModeReal CPU burn per gas unit.
	BurnFactor int
	// InterferencePerMille models shared-resource contention between
	// concurrently active simulated cores (ModeSim only): each unit of
	// work costs an extra k/1000 per additional active thread. The default
	// (150) reproduces the ~0.7 parallel efficiency visible in the paper's
	// JVM measurements; set to a negative value for ideal cores.
	InterferencePerMille int
	// Engine selects the block-execution engine measured as "the miner"
	// (default speculative — the paper's Algorithm 1). The serial baseline
	// and the validator runs are unaffected, so speedups stay comparable
	// across engines.
	Engine engine.Kind
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Mode == 0 {
		c.Mode = ModeSim
	}
	if c.Runs <= 0 {
		c.Runs = 1
		if c.Mode == ModeReal {
			c.Runs = 5
		}
	}
	if c.Warmups < 0 {
		c.Warmups = 0
	} else if c.Warmups == 0 && c.Mode == ModeReal {
		c.Warmups = 3
	}
	if c.Policy == 0 {
		c.Policy = stm.PolicyEager
	}
	if c.BurnFactor <= 0 {
		c.BurnFactor = 8
	}
	if c.InterferencePerMille == 0 {
		c.InterferencePerMille = DefaultInterferencePerMille
	} else if c.InterferencePerMille < 0 {
		c.InterferencePerMille = 0
	}
	if c.Engine == 0 {
		c.Engine = engine.KindSpeculative
	}
	return c
}

// DefaultInterferencePerMille is the default simulated memory-contention
// factor; see Config.InterferencePerMille.
const DefaultInterferencePerMille = 150

func (c Config) runner() runtime.Runner {
	if c.Mode == ModeReal {
		return runtime.NewOSRunner(runtime.SpinBurn(c.BurnFactor))
	}
	return runtime.NewSimRunnerInterference(c.InterferencePerMille)
}

// Measurement is one (benchmark, parameters) data point.
type Measurement struct {
	Params workload.Params
	// SerialTime, MinerTime and ValidatorTime are per-run durations in the
	// mode's unit (virtual gas-time or nanoseconds).
	SerialTime    stats.Sample
	MinerTime     stats.Sample
	ValidatorTime stats.Sample
	// MinerSpeedup and ValidatorSpeedup are serial/variant mean ratios —
	// the paper's "Speedup Over Serial".
	MinerSpeedup     float64
	ValidatorSpeedup float64
	// Retries counts discarded execution attempts in the last mining run
	// (speculative aborts or OCC re-executions).
	Retries int
	// Rounds counts OCC validate-and-commit rounds in the last mining run
	// (1 for the other engines).
	Rounds int
	// Edges and CriticalPath describe the last run's published schedule.
	Edges        int
	CriticalPath uint64
}

// Measure runs the full protocol for one parameter combination.
func Measure(p workload.Params, cfg Config) (Measurement, error) {
	cfg = cfg.withDefaults()
	wl, err := workload.Generate(p)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: generate: %w", err)
	}
	parent := chain.GenesisHeader(types.HashString("bench-genesis"))
	m := Measurement{Params: p}

	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %w", err)
	}
	mopts := engine.Options{Workers: cfg.Workers, Policy: cfg.Policy}
	vcfg := validator.Config{Workers: cfg.Workers}

	// The serial baseline mirrors the paper's: the same instrumented
	// (speculative) code run on a single thread — "a serial miner that runs
	// the block without parallelization" (§7.2). A single worker pays the
	// STM bookkeeping but never waits or aborts. It is the common
	// denominator for every engine's speedup.
	scfg := miner.Config{Workers: 1, Policy: cfg.Policy}

	total := cfg.Warmups + cfg.Runs
	for run := 0; run < total; run++ {
		measured := run >= cfg.Warmups

		wl.Reset()
		serial, err := miner.MineParallel(cfg.runner(), wl.World, parent, wl.Calls, scfg)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: serial: %w", err)
		}

		wl.Reset()
		mres, err := miner.Mine(eng, cfg.runner(), wl.World, parent, wl.Calls, mopts)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: mine (%v): %w", cfg.Engine, err)
		}

		wl.Reset()
		vres, err := validator.Validate(cfg.runner(), wl.World, mres.Block, vcfg)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: validate (%v block): %w", cfg.Engine, err)
		}

		if !measured {
			continue
		}
		m.SerialTime.Add(float64(serial.Makespan))
		m.MinerTime.Add(float64(mres.Makespan))
		m.ValidatorTime.Add(float64(vres.Makespan))
		m.Retries = mres.Stats.Retries
		m.Rounds = mres.Stats.Rounds
		m.Edges = mres.Graph.EdgeCount()
		if metrics, err := sched.Metrics(mres.Graph); err == nil {
			m.CriticalPath = metrics.CriticalPathLen
		}
	}
	if mt := m.MinerTime.Mean(); mt > 0 {
		m.MinerSpeedup = m.SerialTime.Mean() / mt
	}
	if vt := m.ValidatorTime.Mean(); vt > 0 {
		m.ValidatorSpeedup = m.SerialTime.Mean() / vt
	}
	return m, nil
}
