package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"contractstm/internal/cluster"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/importer"
	"contractstm/internal/node"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// SyncConfig tunes the catch-up import sweep: one miner seals a chain,
// then fresh followers sync it over HTTP — serially (the pre-pipeline
// path) and through the staged import pipeline at several Phase A worker
// counts. The sweep answers the rollout question directly: how much
// faster does a late joiner catch up, and does shadow mode stay silent?
type SyncConfig struct {
	// Kind selects the workload (default Token).
	Kind workload.Kind
	// Blocks is the catch-up chain length (default 64).
	Blocks int
	// BlockSize is transactions per block (default 48).
	BlockSize int
	// ConflictPercent is the workload's data-conflict percentage
	// (default SweepConflictFixed; negative = conflict-free).
	ConflictPercent int
	// Workers is every node's execution pool size (default 3).
	Workers int
	// ImportWorkers is the staged pipeline's Phase A worker axis
	// (default 1, 2, 4).
	ImportWorkers []int
	// Engine selects the execution engine (default OCC).
	Engine engine.Kind
	// Seed makes workload generation deterministic (default DefaultSeed).
	Seed int64
	// LinkRTT is the simulated round-trip time to the peer, injected at
	// the HTTP transport (default 2ms; negative = none). The miner runs
	// in-process behind a loopback listener, which understates a real
	// deployment: the serial path pays one round trip of idle wire time
	// per block, the staged path batches and prefetches them, and over
	// loopback both cost ~nothing. A small fixed RTT restores the cost
	// the one-at-a-time loop actually pays against a peer one network
	// hop away. Reported in the table and the JSON artifact.
	LinkRTT time.Duration
}

// WithDefaults returns c with every unset field at its default.
func (c SyncConfig) WithDefaults() SyncConfig {
	if c.Kind == 0 {
		c.Kind = workload.KindToken
	}
	if c.Blocks <= 0 {
		c.Blocks = 64
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 48
	}
	if c.ConflictPercent == 0 {
		c.ConflictPercent = SweepConflictFixed
	} else if c.ConflictPercent < 0 {
		c.ConflictPercent = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if len(c.ImportWorkers) == 0 {
		c.ImportWorkers = []int{1, 2, 4}
	}
	if c.Engine == 0 {
		c.Engine = engine.KindOCC
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.LinkRTT == 0 {
		c.LinkRTT = 2 * time.Millisecond
	} else if c.LinkRTT < 0 {
		c.LinkRTT = 0
	}
	return c
}

// SyncPoint is one measured catch-up: a fresh follower importing the
// full chain from the miner's HTTP endpoint.
type SyncPoint struct {
	// Mode is "serial" (ImportOff, one block at a time) or "staged"
	// (ImportOn through the pipeline).
	Mode string `json:"mode"`
	// ImportWorkers is the staged pipeline's Phase A pool size (0 on the
	// serial point).
	ImportWorkers int `json:"import_workers"`
	// Elapsed is wall-clock for the whole catch-up.
	ElapsedNs    int64   `json:"elapsed_ns"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	TxsPerSec    float64 `json:"txs_per_sec"`
	// SpeedupVsSerial is this point's blocks/s over the serial point's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// SyncReport is the BENCH_sync.json artifact.
type SyncReport struct {
	GoVersion       string `json:"go_version"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
	Engine          string `json:"engine"`
	Blocks          int    `json:"blocks"`
	BlockSize       int    `json:"block_size"`
	ConflictPercent int    `json:"conflict_percent"`
	Workers         int    `json:"workers"`
	// LinkRTTMs is the simulated per-request round-trip time to the
	// peer, in milliseconds (see SyncConfig.LinkRTT).
	LinkRTTMs float64     `json:"link_rtt_ms"`
	Points    []SyncPoint `json:"points"`
	// ShadowDivergences is the verdict-divergence count from the shadow
	// parity pass (a full catch-up in shadow mode); any non-zero value
	// means the parallel stateless phase disagreed with the serial
	// recomputation somewhere — the shadow→on promotion gate fails.
	ShadowDivergences int64 `json:"shadow_divergences"`
	// SpeedupAt4 is the staged-at-4-workers point's speedup over serial
	// (0 when 4 is not on the axis) — the headline rollout number.
	SpeedupAt4 float64 `json:"speedup_at_4_workers"`
}

// syncFollower builds a fresh follower on world w and times a full
// catch-up against the miner's URL.
func syncFollower(w *workloadWorld, url string, mode node.ImportMode, workers, execWorkers int, rtt time.Duration) (time.Duration, int64, error) {
	follower, err := node.New(node.Config{World: w.world, Workers: execWorkers, Engine: w.engine, ImportMode: mode})
	if err != nil {
		return 0, 0, fmt.Errorf("bench: sync follower: %w", err)
	}
	hc := &http.Client{Transport: &cluster.LatencyTransport{RTT: rtt}}
	peer := cluster.NewPeer(url, hc)
	start := time.Now()
	imported, err := cluster.SyncWith(context.Background(), follower, peer, importer.Config{Workers: workers})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: sync (%s): %w", mode, err)
	}
	if imported != w.blocks {
		return 0, 0, fmt.Errorf("bench: sync (%s) imported %d blocks, want %d", mode, imported, w.blocks)
	}
	if follower.Head().Header.Hash() != w.head {
		return 0, 0, fmt.Errorf("bench: sync (%s) follower head diverged", mode)
	}
	return elapsed, follower.ImportDivergences(), nil
}

// workloadWorld bundles one follower genesis with the sweep's chain facts.
type workloadWorld struct {
	world  *contract.World
	engine engine.Kind
	blocks int
	head   types.Hash
}

// SweepSync mines the catch-up chain once and measures every point:
// serial, staged per worker count, and a shadow parity pass.
func SweepSync(cfg SyncConfig) (SyncReport, error) {
	cfg = cfg.WithDefaults()
	report := SyncReport{
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Engine:          cfg.Engine.String(),
		Blocks:          cfg.Blocks,
		BlockSize:       cfg.BlockSize,
		ConflictPercent: cfg.ConflictPercent,
		Workers:         cfg.Workers,
		LinkRTTMs:       float64(cfg.LinkRTT) / float64(time.Millisecond),
	}
	totalTxs := cfg.Blocks * cfg.BlockSize
	// One world per follower point (serial + each staged count + shadow)
	// plus the miner's; all identical genesis.
	points := 2 + len(cfg.ImportWorkers)
	worlds, calls, err := cluster.GenerateWorlds(workload.Params{
		Kind: cfg.Kind, Transactions: totalTxs,
		ConflictPercent: cfg.ConflictPercent, Seed: cfg.Seed,
	}, points+1)
	if err != nil {
		return SyncReport{}, fmt.Errorf("bench: sync workload: %w", err)
	}

	cl, err := cluster.New(cluster.Config{Worlds: worlds[:1], Engine: cfg.Engine, Workers: cfg.Workers})
	if err != nil {
		return SyncReport{}, fmt.Errorf("bench: sync cluster: %w", err)
	}
	defer cl.Close()
	miner := cl.Node(0)
	miner.SubmitAll(calls)
	for b := 0; b < cfg.Blocks; b++ {
		if _, err := miner.MineOne(cfg.BlockSize); err != nil {
			return SyncReport{}, fmt.Errorf("bench: sync mine block %d: %w", b+1, err)
		}
	}
	head := miner.Head().Header.Hash()
	url := cl.URL(0)
	next := 1

	measure := func(mode node.ImportMode, importWorkers int) (SyncPoint, int64, error) {
		w := &workloadWorld{world: worlds[next], engine: cfg.Engine, blocks: cfg.Blocks, head: head}
		next++
		elapsed, div, err := syncFollower(w, url, mode, importWorkers, cfg.Workers, cfg.LinkRTT)
		if err != nil {
			return SyncPoint{}, 0, err
		}
		pt := SyncPoint{Mode: "staged", ImportWorkers: importWorkers, ElapsedNs: elapsed.Nanoseconds()}
		if mode == node.ImportOff {
			pt.Mode, pt.ImportWorkers = "serial", 0
		}
		if s := elapsed.Seconds(); s > 0 {
			pt.BlocksPerSec = float64(cfg.Blocks) / s
			pt.TxsPerSec = float64(totalTxs) / s
		}
		return pt, div, nil
	}

	serial, _, err := measure(node.ImportOff, 0)
	if err != nil {
		return SyncReport{}, err
	}
	serial.SpeedupVsSerial = 1
	report.Points = append(report.Points, serial)

	for _, iw := range cfg.ImportWorkers {
		pt, _, err := measure(node.ImportOn, iw)
		if err != nil {
			return SyncReport{}, err
		}
		if serial.BlocksPerSec > 0 {
			pt.SpeedupVsSerial = pt.BlocksPerSec / serial.BlocksPerSec
		}
		if iw == 4 {
			report.SpeedupAt4 = pt.SpeedupVsSerial
		}
		report.Points = append(report.Points, pt)
	}

	// Shadow parity pass: full catch-up with both paths running; the
	// divergence counter is the promotion gate, not the timing.
	_, div, err := measure(node.ImportShadow, 4)
	if err != nil {
		return SyncReport{}, err
	}
	report.ShadowDivergences = div
	return report, nil
}

// WriteSyncJSON writes the report as indented JSON (the CI artifact).
func WriteSyncJSON(w io.Writer, r SyncReport) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadSyncReport decodes a BENCH_sync.json artifact.
func ReadSyncReport(r io.Reader) (SyncReport, error) {
	var report SyncReport
	if err := json.NewDecoder(r).Decode(&report); err != nil {
		return SyncReport{}, fmt.Errorf("bench: sync report: %w", err)
	}
	return report, nil
}

// WriteSyncTable renders the sweep for humans.
func WriteSyncTable(w io.Writer, r SyncReport) {
	fmt.Fprintf(w, "Catch-up sync sweep [%s]: %d blocks × %d txs, %d%% conflict, %.1fms link RTT, %s GOMAXPROCS=%d\n",
		r.Engine, r.Blocks, r.BlockSize, r.ConflictPercent, r.LinkRTTMs, r.GoVersion, r.GOMAXPROCS)
	fmt.Fprintf(w, "  %-8s %-14s %-12s %-12s %-12s %-8s\n",
		"mode", "import-workers", "elapsed", "blocks/s", "txs/s", "speedup")
	for _, p := range r.Points {
		iw := "-"
		if p.Mode == "staged" {
			iw = fmt.Sprintf("%d", p.ImportWorkers)
		}
		fmt.Fprintf(w, "  %-8s %-14s %-12s %-12.1f %-12.1f %-8.2f\n",
			p.Mode, iw, time.Duration(p.ElapsedNs).Round(time.Millisecond), p.BlocksPerSec, p.TxsPerSec, p.SpeedupVsSerial)
	}
	fmt.Fprintf(w, "  shadow parity: %d verdict divergences\n\n", r.ShadowDivergences)
}
