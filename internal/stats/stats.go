// Package stats provides the small statistical toolkit the evaluation
// harness needs: means, standard deviations and series formatting,
// mirroring the paper's protocol ("the running time is collected five
// times and the mean and standard deviation are measured").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a collection of measurements.
type Sample struct {
	values []float64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 when
// fewer than two measurements exist).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min returns the smallest measurement (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest measurement (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Median returns the middle measurement (0 for an empty sample).
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Summary renders "mean ± stddev" with the given precision.
func (s *Sample) Summary(prec int) string {
	return fmt.Sprintf("%.*f ± %.*f", prec, s.Mean(), prec, s.StdDev())
}

// GeoMean returns the geometric mean of positive values; used to average
// speedups across benchmarks without letting one outlier dominate.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// ArithMean returns the arithmetic mean of a plain slice. The paper's
// Table 1 averages speedups arithmetically.
func ArithMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
