package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanAndStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almostEqual(s.Mean(), 5) {
		t.Fatalf("mean = %f", s.Mean())
	}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	if !almostEqual(s.StdDev(), math.Sqrt(32.0/7.0)) {
		t.Fatalf("stddev = %f", s.StdDev())
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSingleValueSample(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Mean() != 42 || s.StdDev() != 0 || s.Median() != 42 {
		t.Fatalf("single-value sample: mean=%f stddev=%f median=%f", s.Mean(), s.StdDev(), s.Median())
	}
}

func TestMinMaxMedian(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Add(v)
	}
	if s.Min() != 1 || s.Max() != 9 || s.Median() != 5 {
		t.Fatalf("min=%f max=%f median=%f", s.Min(), s.Max(), s.Median())
	}
	s.Add(11) // even count: median of 5 and 7
	if s.Median() != 6 {
		t.Fatalf("even median = %f", s.Median())
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.Summary(1); got != "2.0 ± 1.4" {
		t.Fatalf("summary = %q", got)
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEqual(GeoMean([]float64{2, 8}), 4) {
		t.Fatalf("geomean(2,8) = %f", GeoMean([]float64{2, 8}))
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean(nil) != 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("geomean with zero should be 0")
	}
}

func TestArithMean(t *testing.T) {
	if !almostEqual(ArithMean([]float64{1, 2, 3}), 2) {
		t.Fatal("arith mean broken")
	}
	if ArithMean(nil) != 0 {
		t.Fatal("arith mean of empty should be 0")
	}
}

// Property: mean is within [min, max] and stddev is non-negative.
func TestSampleInvariants(t *testing.T) {
	prop := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Scale into a sane range to avoid float overflow artifacts.
			s.Add(math.Mod(v, 1e9))
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6 && s.StdDev() >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
