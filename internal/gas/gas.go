// Package gas implements Ethereum-style gas metering.
//
// The paper relies on gas in two ways: it bounds every contract execution
// ("the Ethereum gas restriction ensures this sequence is finite", §5), and
// it is the natural unit of computational cost. This reproduction also uses
// gas as the virtual-time unit of the discrete-event execution model: one gas
// unit equals one unit of simulated time (see internal/des and DESIGN.md).
package gas

import (
	"errors"
	"fmt"
)

// Gas is a quantity of computational work.
type Gas uint64

// ErrOutOfGas is returned (wrapped) when a meter is exhausted. Contract
// execution converts it into an abort, exactly like Ethereum's out-of-gas
// revert.
var ErrOutOfGas = errors.New("gas: out of gas")

// Schedule assigns costs to the primitive operations of the storage and
// contract layers. The absolute values are loosely modelled on the EVM fee
// schedule (reads cheap, writes expensive) but simplified: the paper's
// evaluation depends only on relative costs.
type Schedule struct {
	// TxBase is charged once per transaction (Ethereum: 21000).
	TxBase Gas
	// MapRead / MapWrite / MapDelete cost storage map operations.
	MapRead   Gas
	MapWrite  Gas
	MapDelete Gas
	// CellRead / CellWrite / CellAdd cost scalar cell operations.
	CellRead  Gas
	CellWrite Gas
	CellAdd   Gas
	// ArrayRead / ArrayWrite / ArrayPush cost array operations.
	ArrayRead  Gas
	ArrayWrite Gas
	ArrayPush  Gas
	// Step is the cost of one unit of pure computation (hashing, arithmetic
	// loop iterations). Contract bodies charge Step-multiples for their
	// non-storage work.
	Step Gas
	// Call is the overhead of a nested contract call.
	Call Gas
	// LockOverhead models the speculative runtime's per-acquisition cost
	// (abstract lock acquisition plus inverse logging). Validators replaying
	// a published schedule do not pay it — that asymmetry is why the paper's
	// validators outperform its miners.
	LockOverhead Gas
	// TraceOverhead models the validator's thread-local recording of the
	// abstract locks it "would have acquired" (§4); it is deliberately far
	// cheaper than LockOverhead because it needs no inter-thread
	// synchronization.
	TraceOverhead Gas
	// OCCOverhead models the OCC regime's per-access cost: read/write-set
	// bookkeeping plus overlay buffering. It is thread-local (no
	// inter-thread synchronization), so it sits between TraceOverhead and
	// LockOverhead.
	OCCOverhead Gas
	// OCCValidate models the OCC commit round's per-entry cost: checking
	// one read/write-set entry against the sets committed earlier in the
	// round.
	OCCValidate Gas
	// SpecTxSetup is the per-transaction cost of starting a speculative
	// action (transaction descriptor, log setup).
	SpecTxSetup Gas
	// TaskSetup is the per-transaction cost of a validator fork-join task.
	TaskSetup Gas
	// JoinOverhead models one fork-join task dependency join at validation.
	JoinOverhead Gas
	// UndoPerOp is the replay cost of one inverse-log entry on abort.
	UndoPerOp Gas
	// PoolStartup is the per-worker cost of spinning up and dispatching to
	// a parallel thread pool. Only parallel executions pay it; it is why
	// small blocks are not worth parallelizing (paper Figure 1, left).
	PoolStartup Gas
}

// DefaultSchedule returns the schedule used across the evaluation.
func DefaultSchedule() Schedule {
	return Schedule{
		TxBase:        210,
		MapRead:       20,
		MapWrite:      50,
		MapDelete:     50,
		CellRead:      10,
		CellWrite:     30,
		CellAdd:       30,
		ArrayRead:     15,
		ArrayWrite:    40,
		ArrayPush:     45,
		Step:          1,
		Call:          70,
		LockOverhead:  32,
		TraceOverhead: 2,
		OCCOverhead:   8,
		OCCValidate:   3,
		SpecTxSetup:   90,
		TaskSetup:     10,
		JoinOverhead:  8,
		UndoPerOp:     6,
		PoolStartup:   2500,
	}
}

// Meter charges gas against a fixed limit. The zero Meter has limit 0 and
// fails the first charge; construct with NewMeter.
//
// Meter is not safe for concurrent use: each transaction owns exactly one
// meter, matching the single-threaded semantics of a contract invocation.
type Meter struct {
	limit Gas
	used  Gas
}

// NewMeter returns a meter with the given limit.
func NewMeter(limit Gas) *Meter {
	return &Meter{limit: limit}
}

// Charge consumes amount from the meter. On exhaustion it records the full
// limit as used (like the EVM, out-of-gas consumes everything) and returns an
// error wrapping ErrOutOfGas.
func (m *Meter) Charge(amount Gas) error {
	if remaining := m.limit - m.used; amount > remaining {
		m.used = m.limit
		return fmt.Errorf("charge %d with %d remaining of %d: %w", amount, remaining, m.limit, ErrOutOfGas)
	}
	m.used += amount
	return nil
}

// Used reports gas consumed so far.
func (m *Meter) Used() Gas { return m.used }

// Limit reports the meter's limit.
func (m *Meter) Limit() Gas { return m.limit }

// Remaining reports gas left before exhaustion.
func (m *Meter) Remaining() Gas { return m.limit - m.used }

// Refund returns amount to the meter (used by rollback paths that refund
// storage-release credits). Refunding more than was used saturates at zero.
func (m *Meter) Refund(amount Gas) {
	if amount > m.used {
		m.used = 0
		return
	}
	m.used -= amount
}

// Reset restores the meter to unused with the same limit (retry of an
// aborted speculative execution re-arms the transaction's gas).
func (m *Meter) Reset() { m.used = 0 }
