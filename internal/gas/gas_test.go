package gas

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestChargeWithinLimit(t *testing.T) {
	m := NewMeter(100)
	if err := m.Charge(60); err != nil {
		t.Fatalf("Charge(60): %v", err)
	}
	if m.Used() != 60 || m.Remaining() != 40 {
		t.Fatalf("used=%d remaining=%d, want 60/40", m.Used(), m.Remaining())
	}
}

func TestChargeExactLimit(t *testing.T) {
	m := NewMeter(100)
	if err := m.Charge(100); err != nil {
		t.Fatalf("Charge(limit): %v", err)
	}
	if m.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", m.Remaining())
	}
}

func TestChargeOverLimit(t *testing.T) {
	m := NewMeter(100)
	err := m.Charge(101)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("Charge(101) error = %v, want ErrOutOfGas", err)
	}
	if m.Used() != 100 {
		t.Fatalf("out-of-gas should consume the full limit; used=%d", m.Used())
	}
}

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter(100)
	for i := 0; i < 10; i++ {
		if err := m.Charge(10); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if err := m.Charge(1); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("11th charge error = %v, want ErrOutOfGas", err)
	}
}

func TestZeroMeterFailsFirstCharge(t *testing.T) {
	var m Meter
	if err := m.Charge(1); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("zero meter Charge(1) = %v, want ErrOutOfGas", err)
	}
	if err := m.Charge(0); err != nil {
		t.Fatalf("zero-amount charge should always succeed: %v", err)
	}
}

func TestRefund(t *testing.T) {
	m := NewMeter(100)
	_ = m.Charge(50)
	m.Refund(20)
	if m.Used() != 30 {
		t.Fatalf("used after refund = %d, want 30", m.Used())
	}
	m.Refund(1000)
	if m.Used() != 0 {
		t.Fatalf("over-refund should saturate at 0, used=%d", m.Used())
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(100)
	_ = m.Charge(70)
	m.Reset()
	if m.Used() != 0 || m.Limit() != 100 {
		t.Fatalf("after reset used=%d limit=%d, want 0/100", m.Used(), m.Limit())
	}
}

func TestDefaultScheduleRelativeCosts(t *testing.T) {
	s := DefaultSchedule()
	if s.MapWrite <= s.MapRead {
		t.Fatal("writes must cost more than reads")
	}
	if s.LockOverhead == 0 {
		t.Fatal("lock overhead must be non-zero for the miner/validator asymmetry to exist")
	}
	if s.JoinOverhead >= s.LockOverhead {
		t.Fatal("join overhead must undercut lock overhead, else validators cannot beat miners")
	}
	if s.Step != 1 {
		t.Fatalf("Step = %d, want 1 (gas is the virtual time unit)", s.Step)
	}
}

// Property: a sequence of charges summing within the limit always succeeds
// and Used equals the sum.
func TestChargeSequenceProperty(t *testing.T) {
	prop := func(parts []uint16) bool {
		var total Gas
		for _, p := range parts {
			total += Gas(p)
		}
		m := NewMeter(total)
		var sum Gas
		for _, p := range parts {
			if err := m.Charge(Gas(p)); err != nil {
				return false
			}
			sum += Gas(p)
		}
		return m.Used() == sum && m.Remaining() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
