package reward

import (
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func mineFor(t *testing.T, kind workload.Kind, conflict int) chain.Block {
	t.Helper()
	wl, err := workload.Generate(workload.Params{
		Kind: kind, Transactions: 40, ConflictPercent: conflict, Seed: 9,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World,
		chain.GenesisHeader(types.HashString("reward")), wl.Calls, miner.Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	return res.Block
}

func TestParallelScheduleEarnsFullBonus(t *testing.T) {
	b := mineFor(t, workload.KindBallot, 0) // edge-free schedule
	br, err := Compute(b, DefaultParams())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if br.Parallelism != 1 {
		t.Fatalf("parallelism = %f, want 1", br.Parallelism)
	}
	if br.Bonus != DefaultParams().ParallelismBonus {
		t.Fatalf("bonus = %d, want full %d", br.Bonus, DefaultParams().ParallelismBonus)
	}
	if br.Total != br.Base+br.Bonus {
		t.Fatalf("total = %d", br.Total)
	}
}

func TestSerializedScheduleForfeitsBonus(t *testing.T) {
	// The §4 slowdown attack: add every consecutive edge of S to H. The
	// block stays valid (see validator tests) but earns no bonus.
	b := mineFor(t, workload.KindBallot, 0)
	order := b.Schedule.Order
	for i := 1; i < len(order); i++ {
		b.Schedule.Edges = append(b.Schedule.Edges, sched.Edge{From: order[i-1], To: order[i]})
	}
	br, err := Compute(b, DefaultParams())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if br.Parallelism != 0 || br.Bonus != 0 {
		t.Fatalf("serialized schedule still earns: %+v", br)
	}
	if br.Total != DefaultParams().BaseSubsidy {
		t.Fatalf("total = %d, want base only", br.Total)
	}
}

func TestBonusMonotoneInConflict(t *testing.T) {
	// More real conflict → longer critical path → smaller bonus.
	low, err := Compute(mineFor(t, workload.KindAuction, 10), DefaultParams())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	high, err := Compute(mineFor(t, workload.KindAuction, 90), DefaultParams())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if high.Bonus >= low.Bonus {
		t.Fatalf("bonus not monotone: high-conflict %d >= low-conflict %d", high.Bonus, low.Bonus)
	}
}

func TestFees(t *testing.T) {
	b := mineFor(t, workload.KindBallot, 0)
	p := DefaultParams()
	p.FeePerGas = 1
	br, err := Compute(b, p)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	var gasUsed uint64
	for _, r := range b.Receipts {
		gasUsed += uint64(r.GasUsed)
	}
	if br.Fees != types.Amount(gasUsed) {
		t.Fatalf("fees = %d, want %d", br.Fees, gasUsed)
	}
}

func TestEmptyAndMalformedBlocks(t *testing.T) {
	empty := chain.Block{}
	br, err := Compute(empty, DefaultParams())
	if err != nil {
		t.Fatalf("Compute(empty): %v", err)
	}
	if br.Total != DefaultParams().BaseSubsidy {
		t.Fatalf("empty block total = %d", br.Total)
	}
	bad := mineFor(t, workload.KindBallot, 0)
	bad.Schedule.Edges = append(bad.Schedule.Edges, sched.Edge{From: 0, To: 999})
	if _, err := Compute(bad, DefaultParams()); err == nil {
		t.Fatal("malformed schedule rewarded")
	}
}

func TestSingleTxBlockFullyParallel(t *testing.T) {
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindBallot, Transactions: 1, ConflictPercent: 0, Seed: 1,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World,
		chain.GenesisHeader(types.HashString("reward")), wl.Calls, miner.Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	br, err := Compute(res.Block, DefaultParams())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if br.Parallelism != 1 {
		t.Fatalf("single-tx parallelism = %f", br.Parallelism)
	}
}
