// Package reward implements the incentive mechanism the paper sketches in
// §4: "Perhaps the simplest way to provide an incentive is to reward
// miners more for publishing highly parallel schedules (for example, as
// measured by critical path length). … Naturally, such rewards must be
// calibrated to produce desired effects."
//
// The calibration implemented here pays a base subsidy plus a parallelism
// bonus proportional to how far the published schedule's critical path is
// below the worst case (a fully serial chain):
//
//	parallelism = 1 - (criticalPath-1)/(n-1)         ∈ [0, 1]
//	reward      = base + bonus·parallelism + fees
//
// A miner that publishes a deliberately serialized (but still correct)
// schedule — the slowdown attack §4 describes — forfeits the entire bonus;
// a perfectly parallel schedule earns all of it. Because the schedule is
// in the block, the computation is verifiable by everyone.
package reward

import (
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/sched"
	"contractstm/internal/types"
)

// Params calibrates the reward function.
type Params struct {
	// BaseSubsidy is paid for any valid block.
	BaseSubsidy types.Amount
	// ParallelismBonus is the maximum extra subsidy, scaled by the
	// schedule's parallelism factor.
	ParallelismBonus types.Amount
	// FeePerGas converts the block's consumed gas into fees.
	FeePerGas types.Amount
}

// DefaultParams returns a calibration where a fully parallel schedule
// doubles the base subsidy.
func DefaultParams() Params {
	return Params{BaseSubsidy: 1000, ParallelismBonus: 1000, FeePerGas: 0}
}

// Breakdown itemizes a block reward.
type Breakdown struct {
	// Parallelism is the schedule's parallelism factor in [0, 1]:
	// 1 for an edge-free schedule, 0 for a serial chain.
	Parallelism float64
	// CriticalPath is the published schedule's critical path length.
	CriticalPath uint64
	// Base, Bonus and Fees are the reward components.
	Base  types.Amount
	Bonus types.Amount
	Fees  types.Amount
	// Total is the sum of the components.
	Total types.Amount
}

// Compute derives the verifiable reward breakdown for a block from its
// published schedule. Empty blocks earn only the base subsidy.
func Compute(b chain.Block, p Params) (Breakdown, error) {
	n := len(b.Calls)
	out := Breakdown{Base: p.BaseSubsidy}
	if n == 0 {
		out.Total = out.Base
		return out, nil
	}
	g, err := sched.GraphFromEdges(n, b.Schedule.Edges)
	if err != nil {
		return Breakdown{}, fmt.Errorf("reward: %w", err)
	}
	metrics, err := sched.Metrics(g)
	if err != nil {
		return Breakdown{}, fmt.Errorf("reward: %w", err)
	}
	out.CriticalPath = metrics.CriticalPathLen

	if n == 1 {
		out.Parallelism = 1
	} else {
		out.Parallelism = 1 - float64(metrics.CriticalPathLen-1)/float64(n-1)
	}
	if out.Parallelism < 0 {
		out.Parallelism = 0
	}
	out.Bonus = types.Amount(float64(p.ParallelismBonus) * out.Parallelism)

	var gasUsed uint64
	for _, r := range b.Receipts {
		gasUsed += uint64(r.GasUsed)
	}
	out.Fees = p.FeePerGas * types.Amount(gasUsed)

	total, err := out.Base.Add(out.Bonus)
	if err != nil {
		return Breakdown{}, fmt.Errorf("reward: %w", err)
	}
	total, err = total.Add(out.Fees)
	if err != nil {
		return Breakdown{}, fmt.Errorf("reward: %w", err)
	}
	out.Total = total
	return out, nil
}
