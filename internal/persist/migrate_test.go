package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/codec"
)

// writeGobEraDataDir fabricates a data directory exactly as the previous
// (gob-codec) release would have left it: a WAL segment of gob-framed
// blocks and, optionally, a gob snapshot file.
func writeGobEraDataDir(t *testing.T, dir string, blocks []chain.Block, snap *Snapshot) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, segmentName(blocks[0].Header.Number)))
	if err != nil {
		t.Fatalf("create segment: %v", err)
	}
	for _, b := range blocks {
		payload, err := chain.MarshalBlockGob(b)
		if err != nil {
			t.Fatalf("gob marshal %d: %v", b.Header.Number, err)
		}
		if err := writeFrame(f, payload); err != nil {
			t.Fatalf("write frame: %v", err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close segment: %v", err)
	}
	if snap != nil {
		sf, err := os.Create(filepath.Join(dir, snapshotName(snap.Height())))
		if err != nil {
			t.Fatalf("create snapshot: %v", err)
		}
		if err := encodeSnapshotGob(sf, *snap); err != nil {
			t.Fatalf("gob snapshot: %v", err)
		}
		if err := sf.Close(); err != nil {
			t.Fatalf("close snapshot: %v", err)
		}
	}
}

// TestGobEraDataDirRecovers is the migration guarantee: a data directory
// written entirely by the previous release's gob codec must open, replay
// to the same head hash, and keep working — new appends land in the flat
// format in the same segment, and the next recovery replays the mixed
// gob-then-flat WAL transparently.
func TestGobEraDataDirRecovers(t *testing.T) {
	blocks, snaps := makeBlocks(t, 4, 3)
	dir := t.TempDir()
	writeGobEraDataDir(t, dir, blocks[:3], &snaps[0])

	l, got := openReplay(t, dir, Options{}, snaps[0].Height()+1)
	if len(got) != 2 {
		t.Fatalf("replayed %d blocks above the snapshot, want 2", len(got))
	}
	if got[len(got)-1].Header.Hash() != blocks[2].Header.Hash() {
		t.Fatal("gob-era WAL replayed to a different head hash")
	}
	latest := l.LatestSnapshot()
	if latest == nil || latest.Header.Hash() != snaps[0].Header.Hash() {
		t.Fatal("gob-era snapshot not adopted")
	}
	if !bytes.Equal(latest.State, snaps[0].State) {
		t.Fatal("gob-era snapshot state changed across decode")
	}

	// Continue the chain: the new append is flat-encoded into the same
	// segment the gob frames live in.
	if err := l.Append(blocks[3]); err != nil {
		t.Fatalf("append after migration: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seg, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if codec.IsFlat(seg[frameHeaderLen]) {
		t.Fatal("first (gob-era) frame should not sniff as flat")
	}

	l2, got := openReplay(t, dir, Options{}, 1)
	defer l2.Close()
	if len(got) != len(blocks) {
		t.Fatalf("mixed-codec WAL replayed %d blocks, want %d", len(got), len(blocks))
	}
	for i, b := range got {
		if b.Header.Hash() != blocks[i].Header.Hash() {
			t.Fatalf("block %d hash mismatch after mixed-codec replay", i+1)
		}
	}
}

// TestSnapshotFlatDefault pins that newly written snapshots are flat and
// still round-trip.
func TestSnapshotFlatDefault(t *testing.T) {
	_, snaps := makeBlocks(t, 1, 2)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snaps[0]); err != nil {
		t.Fatalf("encode: %v", err)
	}
	payload := buf.Bytes()[frameHeaderLen:]
	if !codec.IsFlat(payload[0]) {
		t.Fatalf("snapshot payload first byte 0x%02x, want flat magic", payload[0])
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Header != snaps[0].Header || !bytes.Equal(got.State, snaps[0].State) {
		t.Fatal("flat snapshot round trip changed contents")
	}
}

// FuzzCodecSnapshot pins the flat snapshot payload's round-trip identity:
// any payload that decodes must re-encode to the identical bytes, and
// decoding must never panic on arbitrary input.
func FuzzCodecSnapshot(f *testing.F) {
	mk := func(s Snapshot) []byte {
		dst, start := codec.AppendHeader(nil, codec.KindSnapshot)
		dst = appendSnapshotBody(dst, s)
		codec.FinishHeader(dst, start)
		return dst
	}
	f.Add(mk(Snapshot{}))
	f.Add(mk(Snapshot{
		Header: chain.Header{Number: 9, StateRoot: [32]byte{1, 2, 3}},
		State:  []byte("opaque storage bytes"),
	}))
	f.Add([]byte{codec.Magic, codec.KindSnapshot, codec.Version, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeFlatSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(mk(s), data) {
			t.Fatalf("re-encode differs for %x", data)
		}
	})
}
