// Package persist is the durable persistence layer: an append-only block
// WAL plus periodic state snapshots, and the recovery path that brings a
// restarted node back to its pre-crash chain head.
//
// Layout of a data directory:
//
//	wal-%016d.log    append-only block segments; the number is the height
//	                 of the segment's first record
//	snap-%016d.snap  state snapshots (block header + encoded world state),
//	                 written atomically via temp-file + rename
//	pool.gob         pending mempool calls saved on graceful shutdown
//	genesis.id       permanent genesis identity marker (never pruned)
//	LOCK             advisory flock held for the Log's lifetime; a second
//	                 opener fails fast with ErrLocked instead of corrupting
//	                 the WAL
//
// Every WAL record is one gob wire block behind a length+CRC32 frame;
// every snapshot file is one frame. Integrity is layered: the frame CRC
// catches torn or bit-rotted writes, the block codec re-verifies header
// commitments, and recovery replays each block through the engine-hosted
// validator — so a recovered node has re-verified the published (S, H)
// schedules exactly as a validating peer would, and disk corruption can
// at worst lose the torn tail, never silently alter state.
//
// Durability policy: appends go straight to the segment file; fsync is
// batched per Options.SyncEvery. Snapshots bound recovery time (replay
// starts at the newest valid snapshot) and bound disk growth (segments
// entirely below the retained snapshots are pruned).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"contractstm/internal/chain"
	"contractstm/internal/codec"
)

// Errors reported by the persistence layer.
var (
	// ErrCorrupt reports WAL damage that truncation cannot repair: a bad
	// record with later segments still present, or a height gap. Recovery
	// refuses to guess; the operator decides what to salvage.
	ErrCorrupt = errors.New("persist: wal corrupt")
	// ErrNotReplayed reports an Append before recovery replay finished;
	// appending into an unscanned log could silently fork the WAL.
	ErrNotReplayed = errors.New("persist: log not replayed yet")
	// ErrGap reports an appended block whose height does not extend the
	// log tail.
	ErrGap = errors.New("persist: appended block leaves a height gap")
)

// Options tunes a log's durability/cost trade-off.
type Options struct {
	// SyncEvery fsyncs the WAL after every Nth appended block: 1 (the
	// default) syncs every block, larger values batch, negative never
	// syncs (the OS decides; a crash can lose the unsynced tail, which
	// recovery tolerates by truncation).
	SyncEvery int
	// SnapshotEvery writes a state snapshot every N appended blocks;
	// 0 means the default (256), negative disables periodic snapshots.
	// The node layer owns the cadence; the log just stores what it is
	// handed.
	SnapshotEvery int
}

// DefaultSnapshotEvery is the default snapshot cadence in blocks.
const DefaultSnapshotEvery = 256

// WithDefaults returns o with unset fields at their defaults.
func (o Options) WithDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	return o
}

// frame layout: 4-byte big-endian payload length, 4-byte CRC32 (IEEE) of
// the payload, payload bytes.
const frameHeaderLen = 8

// writeFrame appends one framed payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed payload from r, enforcing maxLen. It
// distinguishes a clean end (io.EOF at a frame boundary), a record cut
// short by the end of input (errTorn — the classic interrupted append),
// and a structurally complete frame whose bytes are wrong (errBadFrame
// — bit rot or a garbage length; whether that is tolerable depends on
// what follows it, which is the caller's to judge).
var (
	errTorn     = errors.New("persist: record cut short by end of input")
	errBadFrame = errors.New("persist: invalid record")
)

func readFrame(r io.Reader, maxLen int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn // partial header
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length == 0 || int(length) > maxLen {
		return nil, errBadFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn // partial payload
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, errBadFrame
	}
	return payload, nil
}

// Log is one data directory's persistence state: the open WAL segment,
// the newest snapshot, and the append cursor. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex
	// seg is the open append segment (nil until the first append after
	// open/rotation creates one).
	seg      *os.File
	segStart uint64
	// height is the last durable block height (snapshot height when the
	// WAL holds nothing newer).
	height uint64
	// replayed flips when Blocks has scanned the WAL tail; appends before
	// that would fork the log.
	replayed bool
	// latest is the newest valid snapshot, kept in memory so /snapshot
	// serving and recovery never re-read the file; latestWire is its
	// framed encoding, cached because the serving path would otherwise
	// re-encode identical bytes for every fast-syncing peer.
	latest     *Snapshot
	latestWire []byte
	// validSnaps are the heights of snapshot files known to decode
	// (validated at Open, or written by this process). Retention and
	// segment pruning anchor on these — never on raw file names, which
	// may belong to bit-rotted files that cannot actually be restored.
	validSnaps []uint64
	// sinceSync counts appends since the last fsync.
	sinceSync int
	// closed refuses further writes after Close.
	closed bool
	// failed latches when a failed append could not be rewound: the
	// segment may end in garbage, and appending after it would strand
	// every later block behind an unreadable record on recovery.
	failed bool
	// lockFile holds the directory's exclusive advisory lock for the
	// log's lifetime.
	lockFile *os.File
	// metrics counts the log's I/O work since open. The counters are
	// atomic so a status probe never queues behind l.mu — which appends
	// hold across fsyncs.
	mAppends, mBytes, mFsyncs, mFsyncNanos, mGroups, mMaxGroup atomic.Int64
}

// Metrics counts a log's I/O work since it was opened: how many blocks
// were appended and with how many bytes, how many fsyncs those appends
// cost and how long the kernel held us for them, and how group commits
// batched. The persistence cost of a run is invisible without these — a
// throughput sweep cannot attribute time to the disk if the disk never
// reports.
type Metrics struct {
	// Appends counts WAL block appends; BytesWritten their framed bytes.
	Appends      int64
	BytesWritten int64
	// Fsyncs counts segment fsyncs; FsyncTime is their summed latency.
	Fsyncs    int64
	FsyncTime time.Duration
	// GroupCommits counts AppendGroup calls that appended more than one
	// block under a single fsync; MaxGroup is the largest such group.
	GroupCommits int64
	MaxGroup     int
}

// MetricsSnapshot returns the log's I/O counters. Lock-free: safe to
// call from a status path while an append fsyncs.
func (l *Log) MetricsSnapshot() Metrics {
	return Metrics{
		Appends:      l.mAppends.Load(),
		BytesWritten: l.mBytes.Load(),
		Fsyncs:       l.mFsyncs.Load(),
		FsyncTime:    time.Duration(l.mFsyncNanos.Load()),
		GroupCommits: l.mGroups.Load(),
		MaxGroup:     int(l.mMaxGroup.Load()),
	}
}

// syncSegLocked fsyncs the open segment, timing it into the metrics.
// Caller holds l.mu and has checked l.seg != nil.
func (l *Log) syncSegLocked() error {
	start := time.Now()
	err := l.seg.Sync()
	l.mFsyncs.Add(1)
	l.mFsyncNanos.Add(int64(time.Since(start)))
	return err
}

// ErrClosed reports a write to a closed log.
var ErrClosed = errors.New("persist: log closed")

// ErrFailed reports a log latched by an unrewindable append failure.
var ErrFailed = errors.New("persist: log failed (unrewound partial append)")

// ErrLocked reports a data directory already owned by a live Log —
// another process, or an unclosed Log in this one. Two writers
// interleaving appends and prunes would corrupt the WAL beyond repair,
// so the second opener fails fast instead.
var ErrLocked = errors.New("persist: data dir locked by another log")

// lockFileName is the advisory-lock file inside a data directory.
const lockFileName = "LOCK"

// acquireDirLock takes an exclusive flock on the directory's lock file.
// Advisory flocks die with their file descriptions, so a crashed
// process never leaves a stale lock behind.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// Open opens (creating if needed) the data directory and loads snapshot
// metadata. It does not replay the WAL: call Blocks to stream the tail
// through recovery — appends are refused until that happened, except on a
// directory with no WAL at all.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts.WithDefaults(), lockFile: lock}
	snap, valid, err := scanSnapshots(dir)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	l.latest, l.validSnaps = snap, valid
	if snap != nil {
		l.height = snap.Header.Number
		// Cache the winner's framed bytes for the serving path; a read
		// failure just means /snapshot re-encodes on demand.
		if raw, err := os.ReadFile(filepath.Join(dir, snapshotName(snap.Height()))); err == nil {
			l.latestWire = raw
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	if len(segs) == 0 {
		// Nothing to replay; Blocks is still fine to call (a no-op).
		l.replayed = true
	}
	return l, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Height returns the last appended (or installed) block height.
func (l *Log) Height() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.height
}

// LatestSnapshot returns the newest valid snapshot, or nil when the log
// holds none.
func (l *Log) LatestSnapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latest
}

// LatestSnapshotWire returns the newest snapshot's framed encoding (what
// DecodeSnapshot reads), or nil when none is cached. The serving path
// writes these bytes straight to the wire instead of re-encoding the
// same immutable snapshot per request. Callers must not mutate the
// returned slice.
func (l *Log) LatestSnapshotWire() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latestWire
}

// segment is one WAL file and the height of its first record.
type segment struct {
	start uint64
	path  string
}

func segmentName(start uint64) string { return fmt.Sprintf("wal-%016d.log", start) }

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		var start uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%016d.log", &start); n == 1 && err == nil {
			segs = append(segs, segment{start: start, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// Blocks streams every WAL block with height >= from, in height order,
// through fn, then positions the append cursor at the log tail. A torn or
// invalid record in the final segment truncates the file there (the
// standard WAL contract: an interrupted append loses only itself); the
// same damage in a non-final segment is ErrCorrupt, because blocks behind
// the hole would be unreachable. fn returning an error aborts the scan.
//
// Blocks must be called exactly once, before the first Append.
func (l *Log) Blocks(from uint64, fn func(chain.Block) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	next := from
	for i, seg := range segs {
		last := i == len(segs)-1
		// A segment can only hold heights seg.start .. nextSeg.start-1;
		// skip those entirely below the replay window.
		if !last && segs[i+1].start <= from {
			continue
		}
		end, torn, err := l.replaySegment(seg, from, &next, fn)
		if err != nil {
			return err
		}
		if torn {
			if !last {
				return fmt.Errorf("%w: bad record in %s with later segments present", ErrCorrupt, seg.path)
			}
			if err := os.Truncate(seg.path, end); err != nil {
				return fmt.Errorf("persist: truncate torn tail of %s: %w", seg.path, err)
			}
		}
	}
	if next > from {
		l.height = next - 1
	}
	// Position the append cursor: reopen the last segment if it still has
	// records; an emptied (fully truncated) segment is removed so the next
	// append names a fresh one.
	if len(segs) > 0 {
		lastSeg := segs[len(segs)-1]
		info, err := os.Stat(lastSeg.path)
		switch {
		case err != nil:
			return fmt.Errorf("persist: stat %s: %w", lastSeg.path, err)
		case info.Size() == 0:
			if err := os.Remove(lastSeg.path); err != nil {
				return fmt.Errorf("persist: remove empty segment: %w", err)
			}
		default:
			f, err := os.OpenFile(lastSeg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("persist: reopen segment: %w", err)
			}
			l.seg, l.segStart = f, lastSeg.start
		}
	}
	l.replayed = true
	return nil
}

// replaySegment scans one segment, calling fn for records in the replay
// window and checking height contiguity. It returns the offset of the
// first bad byte and whether the scan ended on a tolerable torn tail.
//
// Damage taxonomy: a record cut short by end of file is the classic
// interrupted append — only itself can be lost, so it is truncated. A
// record whose bytes are wrong (CRC or decode failure) with MORE data
// after it is a different animal: the records behind it may include
// fsync-acknowledged blocks, and silently truncating them would rewind
// durable history (and fork against peers that imported it). That case
// is refused as ErrCorrupt — the operator decides, recovery never
// guesses. A bad final record is indistinguishable from a torn write
// and is truncated like one.
func (l *Log) replaySegment(seg segment, from uint64, next *uint64, fn func(chain.Block) error) (int64, bool, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, false, fmt.Errorf("persist: open segment: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("persist: stat segment: %w", err)
	}
	size := info.Size()
	var offset int64
	r := newByteCounter(f)
	for {
		payload, err := readFrame(r, chain.MaxWireBlock)
		if err == io.EOF {
			return offset, false, nil
		}
		if errors.Is(err, errTorn) {
			// Cut short by EOF: nothing can follow, truncation loses
			// only the interrupted record itself.
			return offset, true, nil
		}
		var decodeErr error
		var b chain.Block
		if err != nil {
			decodeErr = err // errBadFrame
		} else {
			b, decodeErr = chain.UnmarshalBlock(payload)
		}
		if decodeErr != nil {
			if r.n < size {
				return 0, false, fmt.Errorf("%w: %s damaged at offset %d with %d bytes of records behind it",
					ErrCorrupt, seg.path, offset, size-r.n)
			}
			return offset, true, nil
		}
		if b.Header.Number >= from {
			if b.Header.Number != *next {
				return 0, false, fmt.Errorf("%w: %s holds height %d, want %d",
					ErrCorrupt, seg.path, b.Header.Number, *next)
			}
			if err := fn(b); err != nil {
				return 0, false, fmt.Errorf("persist: replay height %d: %w", b.Header.Number, err)
			}
			*next = b.Header.Number + 1
		}
		offset = r.n
	}
}

// byteCounter tracks how many bytes have been consumed, so truncation
// offsets are exact even through buffering.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (c *byteCounter) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append writes one block to the WAL and applies the sync policy. The
// block must extend the log tail: height exactly Height()+1.
func (l *Log) Append(b chain.Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendGroupLocked([]chain.Block{b})
}

// AppendGroup appends blocks — contiguous heights extending the log tail
// — as one group commit: every frame is written, then a single fsync (per
// the sync policy) covers the whole group. The group is acknowledged
// all-or-nothing: on any failure the segment is rewound to the group's
// start, so either every block in the group is recoverable or none left a
// trace. This is the asynchronous Writer's batching primitive — the
// pipeline's throughput win is precisely that N blocks share one fsync.
func (l *Log) AppendGroup(blocks []chain.Block) error {
	if len(blocks) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendGroupLocked(blocks)
}

func (l *Log) appendGroupLocked(blocks []chain.Block) error {
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrFailed
	}
	if !l.replayed {
		return ErrNotReplayed
	}
	// Validate and encode the whole group before the first byte is
	// written: encoding problems must not cost a rewind. All frames land
	// back-to-back in one pooled buffer — the group costs one buffer, one
	// segment write and (per the sync policy) one fsync, however many
	// blocks it batches.
	buf := codec.GetBuffer()
	defer buf.Release()
	dst := buf.B
	for i, b := range blocks {
		if b.Header.Number != l.height+1+uint64(i) {
			return fmt.Errorf("%w: got %d, want %d", ErrGap, b.Header.Number, l.height+1+uint64(i))
		}
		// Reserve the frame header, append the block's wire encoding
		// directly after it, then patch length and CRC over the payload.
		frameStart := len(dst)
		dst = append(dst, make([]byte, frameHeaderLen)...)
		var err error
		dst, err = chain.AppendBlockWire(dst, b)
		if err != nil {
			return fmt.Errorf("persist: append: %w", err)
		}
		payload := dst[frameStart+frameHeaderLen:]
		if len(payload) > chain.MaxWireBlock {
			return fmt.Errorf("persist: append: block %d encodes to %d bytes: %w",
				b.Header.Number, len(payload), chain.ErrTooLarge)
		}
		binary.BigEndian.PutUint32(dst[frameStart:frameStart+4], uint32(len(payload)))
		binary.BigEndian.PutUint32(dst[frameStart+4:frameStart+8], crc32.ChecksumIEEE(payload))
	}
	buf.B = dst
	if l.seg == nil {
		path := filepath.Join(l.dir, segmentName(blocks[0].Header.Number))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("persist: create segment: %w", err)
		}
		l.seg, l.segStart = f, blocks[0].Header.Number
	}
	// An errored append must leave no trace: a partial frame (ENOSPC
	// mid-write) would make every later acknowledged block unreachable
	// on recovery, and a complete-but-unacknowledged frame (fsync
	// failure) would replay a block whose calls the caller requeued —
	// executed twice. Rewind to the pre-group size on any failure; if
	// even the rewind fails, latch the log so nothing appends after the
	// garbage.
	info, err := l.seg.Stat()
	if err != nil {
		return fmt.Errorf("persist: append: stat segment: %w", err)
	}
	start := info.Size()
	fail := func(cause error) error {
		if terr := l.seg.Truncate(start); terr != nil {
			l.failed = true
			return fmt.Errorf("persist: append heights %d..%d: %v; rewind failed, log latched: %w",
				blocks[0].Header.Number, blocks[len(blocks)-1].Header.Number, cause, terr)
		}
		return fmt.Errorf("persist: append heights %d..%d: %w",
			blocks[0].Header.Number, blocks[len(blocks)-1].Header.Number, cause)
	}
	if _, err := l.seg.Write(dst); err != nil {
		return fail(err)
	}
	wrote := int64(len(dst))
	l.sinceSync += len(blocks)
	if l.opts.SyncEvery > 0 && l.sinceSync >= l.opts.SyncEvery {
		if err := l.syncSegLocked(); err != nil {
			l.sinceSync -= len(blocks)
			return fail(err)
		}
		l.sinceSync = 0
	}
	l.height = blocks[len(blocks)-1].Header.Number
	l.mAppends.Add(int64(len(blocks)))
	l.mBytes.Add(wrote)
	if len(blocks) > 1 {
		l.mGroups.Add(1)
		if n := int64(len(blocks)); n > l.mMaxGroup.Load() {
			l.mMaxGroup.Store(n)
		}
	}
	return nil
}

// Sync forces an fsync of the open segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil {
		return nil
	}
	if err := l.syncSegLocked(); err != nil {
		return fmt.Errorf("persist: sync: %w", err)
	}
	l.sinceSync = 0
	return nil
}

// Close fsyncs and closes the open segment and releases the directory
// lock; further writes fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	var err error
	if l.seg != nil {
		err = l.syncSegLocked()
		if cerr := l.seg.Close(); err == nil {
			err = cerr
		}
		l.seg = nil
	}
	if l.lockFile != nil {
		// Closing the fd drops the flock with it.
		_ = l.lockFile.Close()
		l.lockFile = nil
	}
	if err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	return nil
}
