package persist

import (
	"errors"
	"sync"
	"testing"

	"contractstm/internal/chain"
)

// TestPipelineWriterAppendsInOrder: blocks enqueued out of the caller's
// control flow still land in the WAL in height order, every verdict fires
// exactly once in height order, and a reopened log replays the full run.
func TestPipelineWriterAppendsInOrder(t *testing.T) {
	blocks, _ := makeBlocks(t, 6, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{SyncEvery: 1}, 1)
	w := NewWriter(l)

	var mu sync.Mutex
	var order []uint64
	for _, b := range blocks {
		b := b
		w.Enqueue(b, func(err error) {
			if err != nil {
				t.Errorf("block %d: %v", b.Header.Number, err)
			}
			mu.Lock()
			order = append(order, b.Header.Number)
			mu.Unlock()
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(blocks) {
		t.Fatalf("%d verdicts for %d blocks", len(order), len(blocks))
	}
	for i, h := range order {
		if h != uint64(i+1) {
			t.Fatalf("verdict %d fired for height %d", i, h)
		}
	}
	m := l.MetricsSnapshot()
	if m.Appends != int64(len(blocks)) {
		t.Fatalf("metrics: %d appends, want %d", m.Appends, len(blocks))
	}
	if m.Fsyncs < 1 || m.Fsyncs > int64(len(blocks)) {
		t.Fatalf("metrics: %d fsyncs for %d appends", m.Fsyncs, len(blocks))
	}
	if m.BytesWritten == 0 {
		t.Fatal("metrics: no bytes recorded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	re, got := openReplay(t, dir, Options{}, 1)
	defer re.Close()
	if len(got) != len(blocks) {
		t.Fatalf("recovered %d blocks, want %d", len(got), len(blocks))
	}
}

// TestPipelineWriterGroupCommit: a writer stalled behind a slow first
// fsync drains the backlog as one AppendGroup — one fsync for many
// blocks. The stall is simulated by enqueueing the whole run before the
// loop can grab the queue: with the mutex held, everything lands in one
// batch.
func TestPipelineWriterGroupCommit(t *testing.T) {
	blocks, _ := makeBlocks(t, 5, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{SyncEvery: 1}, 1)

	w := &Writer{log: l, stopped: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	// Queue everything before the loop exists: the first drain sees the
	// whole run, deterministically.
	for _, b := range blocks {
		w.Enqueue(b, func(err error) {
			if err != nil {
				t.Errorf("verdict: %v", err)
			}
		})
	}
	go w.loop()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m := l.MetricsSnapshot()
	if m.GroupCommits != 1 || m.MaxGroup != len(blocks) {
		t.Fatalf("group commits %d (max %d), want 1 group of %d", m.GroupCommits, m.MaxGroup, len(blocks))
	}
	if m.Fsyncs != 1 {
		t.Fatalf("%d fsyncs for one group commit, want 1", m.Fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
}

// TestPipelineWriterFailureFailsSuffix: after a failed append (height
// gap), the writer latches — the bad block and everything after it get
// the error, nothing lands behind the hole, and the durable prefix
// survives reopen.
func TestPipelineWriterFailureFailsSuffix(t *testing.T) {
	blocks, _ := makeBlocks(t, 4, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{SyncEvery: 1}, 1)
	w := NewWriter(l)

	if err := w.Append(blocks[0]); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := w.Append(blocks[2]); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append: %v, want ErrGap", err)
	}
	// Latched: even the by-now-correct next height fails fast.
	if err := w.Append(blocks[1]); err == nil {
		t.Fatal("latched writer accepted an append")
	}
	if w.Err() == nil {
		t.Fatal("no latched error")
	}
	w.Kill()
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	re, got := openReplay(t, dir, Options{}, 1)
	defer re.Close()
	if len(got) != 1 || got[0].Header.Number != 1 {
		t.Fatalf("recovered %d blocks, want exactly the durable prefix of 1", len(got))
	}
}

// TestPipelineAppendGroupAllOrNothing: a group whose tail is invalid
// leaves no trace of its valid head — the WAL acknowledges groups
// atomically.
func TestPipelineAppendGroupAllOrNothing(t *testing.T) {
	blocks, _ := makeBlocks(t, 3, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{SyncEvery: 1}, 1)

	bad := []chain.Block{blocks[0], blocks[2]} // gap inside the group
	if err := l.AppendGroup(bad); !errors.Is(err, ErrGap) {
		t.Fatalf("bad group: %v, want ErrGap", err)
	}
	if got := l.Height(); got != 0 {
		t.Fatalf("height %d after refused group, want 0", got)
	}
	if err := l.AppendGroup(blocks); err != nil {
		t.Fatalf("good group: %v", err)
	}
	if got := l.Height(); got != 3 {
		t.Fatalf("height %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, got := openReplay(t, dir, Options{}, 1)
	defer re.Close()
	if len(got) != 3 {
		t.Fatalf("recovered %d blocks, want 3", len(got))
	}
}
