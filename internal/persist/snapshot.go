package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"contractstm/internal/chain"
	"contractstm/internal/codec"
	"contractstm/internal/types"
)

// Snapshot is one durable state checkpoint: the block header at the
// checkpoint height plus the world state encoded by
// contract.World.EncodeState. The header carries the state root the
// restored state must hash to, so a snapshot is self-verifying against
// its own claim; trust in the claim itself comes from replaying the WAL
// tail through the validator (recovery) or from the fast-sync trust
// model (a late joiner accepts a peer's checkpoint like a genesis).
type Snapshot struct {
	Header chain.Header
	State  []byte
}

// Height returns the checkpoint height.
func (s Snapshot) Height() uint64 { return s.Header.Number }

// snapshotVersion guards against decoding legacy gob snapshots from
// incompatible builds.
const snapshotVersion uint32 = 1

// MaxSnapshotBytes bounds one snapshot's framed payload.
const MaxSnapshotBytes = 1 << 30

// MaxSnapshotWire is the full wire size of a maximal snapshot — payload
// plus its length+CRC frame header. The cluster fast-sync client caps
// its body read at this, so a budget-sized snapshot is not misread as
// torn.
const MaxSnapshotWire = MaxSnapshotBytes + frameHeaderLen

// wireSnapshot is the legacy gob envelope, decoded for one release so
// gob-era snapshot files and fast-sync peers stay readable.
type wireSnapshot struct {
	Version uint32
	Header  chain.Header
	State   []byte
}

// EncodeSnapshot writes s to w as a single framed record (the same
// length+CRC frame as WAL records). The payload is the flat codec's
// snapshot stream: codec header, then the block header's flat fields,
// then the length-prefixed opaque state bytes (the storage layer's own
// encoding, which the envelope never interprets).
func EncodeSnapshot(w io.Writer, s Snapshot) error {
	buf := codec.GetBuffer()
	defer buf.Release()
	dst, start := codec.AppendHeader(buf.B, codec.KindSnapshot)
	dst = appendSnapshotBody(dst, s)
	codec.FinishHeader(dst, start)
	buf.B = dst
	if len(dst) > MaxSnapshotBytes {
		return fmt.Errorf("persist: snapshot %d encodes to %d bytes (max %d)", s.Height(), len(dst), MaxSnapshotBytes)
	}
	if err := writeFrame(w, dst); err != nil {
		return fmt.Errorf("persist: write snapshot %d: %w", s.Height(), err)
	}
	return nil
}

func appendSnapshotBody(dst []byte, s Snapshot) []byte {
	h := s.Header
	dst = codec.AppendU64(dst, h.Number)
	dst = append(dst, h.ParentHash[:]...)
	dst = append(dst, h.TxRoot[:]...)
	dst = append(dst, h.ReceiptRoot[:]...)
	dst = append(dst, h.StateRoot[:]...)
	dst = append(dst, h.ScheduleHash[:]...)
	return codec.AppendBytes(dst, s.State)
}

// DecodeSnapshot reads one framed snapshot from r, verifying the frame
// CRC and parsing the payload — flat by default, legacy gob when the
// first payload byte says so. Input is untrusted (disk bytes, or a
// fast-sync peer).
func DecodeSnapshot(r io.Reader) (Snapshot, error) {
	payload, err := readFrame(r, MaxSnapshotBytes)
	if err != nil {
		return Snapshot{}, fmt.Errorf("persist: read snapshot: %w", err)
	}
	if codec.IsFlat(payload[0]) {
		s, err := decodeFlatSnapshot(payload)
		if err != nil {
			return Snapshot{}, fmt.Errorf("persist: decode snapshot: %w", err)
		}
		return s, nil
	}
	var ws wireSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ws); err != nil {
		return Snapshot{}, fmt.Errorf("persist: decode snapshot: %w", err)
	}
	if ws.Version != snapshotVersion {
		return Snapshot{}, fmt.Errorf("persist: snapshot version %d, want %d", ws.Version, snapshotVersion)
	}
	return Snapshot{Header: ws.Header, State: ws.State}, nil
}

func decodeFlatSnapshot(payload []byte) (Snapshot, error) {
	body, err := codec.ParseHeader(payload, codec.KindSnapshot)
	if err != nil {
		return Snapshot{}, err
	}
	r := codec.NewReader(body)
	var s Snapshot
	if s.Header.Number, err = r.U64(); err != nil {
		return Snapshot{}, err
	}
	for _, dst := range []*types.Hash{
		&s.Header.ParentHash, &s.Header.TxRoot, &s.Header.ReceiptRoot,
		&s.Header.StateRoot, &s.Header.ScheduleHash,
	} {
		raw, err := r.Take(types.HashLen)
		if err != nil {
			return Snapshot{}, err
		}
		copy(dst[:], raw)
	}
	if s.State, err = r.Bytes(); err != nil {
		return Snapshot{}, err
	}
	if err := r.Done(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// encodeSnapshotGob writes s in the legacy gob wire format; retained for
// migration tests that fabricate gob-era data directories.
func encodeSnapshotGob(w io.Writer, s Snapshot) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireSnapshot{
		Version: snapshotVersion, Header: s.Header, State: s.State,
	}); err != nil {
		return fmt.Errorf("persist: encode snapshot %d: %w", s.Height(), err)
	}
	return writeFrame(w, buf.Bytes())
}

func snapshotName(height uint64) string { return fmt.Sprintf("snap-%016d.snap", height) }

// genesisFile is the data directory's identity marker: the genesis
// header, written once at creation and never pruned (unlike the genesis
// snapshot, which retention eventually deletes). Reopening the directory
// under a different genesis world must fail loudly instead of silently
// adopting someone else's chain.
const genesisFile = "genesis.id"

// ErrForeignGenesis reports a data directory created under a different
// genesis than the one now opening it.
var ErrForeignGenesis = errors.New("persist: data dir belongs to a different genesis")

// EnsureGenesis records h as the directory's genesis on first open and
// verifies it on every later one.
func (l *Log) EnsureGenesis(h chain.Header) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	path := filepath.Join(l.dir, genesisFile)
	if data, err := os.ReadFile(path); err == nil {
		var have chain.Header
		if payload, err := readFrame(bytes.NewReader(data), 1<<16); err == nil {
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&have); err == nil {
				if have == h {
					return nil
				}
				return fmt.Errorf("%w: %s holds genesis %s, world has %s",
					ErrForeignGenesis, l.dir, have.Hash().Short(), h.Hash().Short())
			}
		}
		// The marker exists but does not decode: refuse to guess — an
		// unreadable identity must not silently become a fresh one.
		return fmt.Errorf("%w: unreadable %s", ErrForeignGenesis, path)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return fmt.Errorf("persist: encode genesis marker: %w", err)
	}
	tmp, err := os.CreateTemp(l.dir, "genesis-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: genesis marker temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeFrame(tmp, buf.Bytes()); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: write genesis marker: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: sync genesis marker: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close genesis marker: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: rename genesis marker: %w", err)
	}
	l.syncDir()
	return nil
}

// listSnapshots returns snapshot file heights, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list %s: %w", dir, err)
	}
	var heights []uint64
	for _, e := range entries {
		var h uint64
		if n, err := fmt.Sscanf(e.Name(), "snap-%016d.snap", &h); n == 1 && err == nil {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	return heights, nil
}

// scanSnapshots validates every snapshot file (frame CRC, version,
// height-vs-name agreement) and returns the newest valid one plus the
// ascending heights of all valid files. An interrupted snapshot write
// leaves no file at all thanks to temp+rename, but bit rot is still
// possible; damaged files are reported, not trusted — retention and
// pruning decisions must never anchor on a snapshot that cannot
// actually be restored.
func scanSnapshots(dir string) (latest *Snapshot, valid []uint64, err error) {
	heights, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, h := range heights {
		f, err := os.Open(filepath.Join(dir, snapshotName(h)))
		if err != nil {
			continue
		}
		s, err := DecodeSnapshot(f)
		_ = f.Close()
		if err != nil || s.Height() != h {
			continue
		}
		valid = append(valid, h)
		cp := s
		latest = &cp
	}
	return latest, valid, nil
}

// retainedSnapshots is how many snapshots survive pruning: the newest
// two, so a snapshot that turns out unreadable still leaves a fallback.
const retainedSnapshots = 2

// WriteSnapshot durably records a state checkpoint: the file lands via
// temp-file + rename (atomic on POSIX — a crash leaves either the old
// set of snapshots or the new one, never a half-written file), the WAL
// rotates so the next append starts a fresh segment, and snapshots plus
// segments no longer needed for recovery are pruned.
//
// The snapshot must be at the log's current height (the caller snapshots
// its world exactly at a block boundary).
func (l *Log) WriteSnapshot(s Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.latest != nil && s.Height() < l.latest.Height() {
		return fmt.Errorf("persist: snapshot height %d below latest %d", s.Height(), l.latest.Height())
	}
	if s.Height() < l.height {
		return fmt.Errorf("persist: snapshot height %d below log height %d", s.Height(), l.height)
	}
	if err := l.writeSnapshotFile(s); err != nil {
		return err
	}
	// Rotate: the next append opens a segment named for its first height,
	// so segments never straddle a snapshot boundary going forward.
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("persist: sync before rotate: %w", err)
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("persist: rotate: %w", err)
		}
		l.seg = nil
		l.sinceSync = 0
	}
	cp := s
	l.latest = &cp
	l.recordValidSnap(s.Height())
	if s.Height() > l.height {
		l.height = s.Height()
	}
	l.prune()
	return nil
}

// recordValidSnap marks a height as backed by a just-written (hence
// valid) snapshot file. Caller holds l.mu.
func (l *Log) recordValidSnap(h uint64) {
	for _, v := range l.validSnaps {
		if v == h {
			return
		}
	}
	l.validSnaps = append(l.validSnaps, h)
	sort.Slice(l.validSnaps, func(i, j int) bool { return l.validSnaps[i] < l.validSnaps[j] })
}

// InstallSnapshot adopts a foreign checkpoint (snapshot fast-sync): all
// existing segments and snapshots are dropped — the local history below
// the checkpoint no longer connects to it — and the log restarts at the
// checkpoint height.
func (l *Log) InstallSnapshot(s Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.seg != nil {
		_ = l.seg.Close()
		l.seg = nil
		l.sinceSync = 0
	}
	if err := l.writeSnapshotFile(s); err != nil {
		return err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("persist: drop segment: %w", err)
		}
	}
	heights, err := listSnapshots(l.dir)
	if err != nil {
		return err
	}
	for _, h := range heights {
		if h != s.Height() {
			if err := os.Remove(filepath.Join(l.dir, snapshotName(h))); err != nil {
				return fmt.Errorf("persist: drop snapshot: %w", err)
			}
		}
	}
	cp := s
	l.latest = &cp
	l.validSnaps = []uint64{s.Height()}
	l.height = s.Height()
	l.replayed = true
	l.syncDir()
	return nil
}

// writeSnapshotFile writes s atomically: temp file in the same
// directory, fsync, rename, directory fsync. The framed encoding is
// cached for the serving path.
func (l *Log) writeSnapshotFile(s Snapshot) error {
	var wire bytes.Buffer
	if err := EncodeSnapshot(&wire, s); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(l.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(wire.Bytes()); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: write snapshot %d: %w", s.Height(), err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(l.dir, snapshotName(s.Height()))); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	l.latestWire = wire.Bytes()
	l.syncDir()
	return nil
}

// syncDir fsyncs the data directory so renames and removals are durable.
// Best effort: some filesystems refuse directory fsync.
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// prune removes known-valid snapshots beyond the retention count and WAL
// segments entirely below the oldest retained snapshot. Only snapshots
// that actually decoded (l.validSnaps) count: a bit-rotted file must
// neither survive as a phantom retention slot nor anchor segment
// deletion, or pruning could destroy the only data recovery can still
// use. Unreadable snapshot files are left in place for the operator.
// Caller holds l.mu.
func (l *Log) prune() {
	if len(l.validSnaps) == 0 {
		return
	}
	keepFrom := 0
	if len(l.validSnaps) > retainedSnapshots {
		keepFrom = len(l.validSnaps) - retainedSnapshots
	}
	for _, h := range l.validSnaps[:keepFrom] {
		_ = os.Remove(filepath.Join(l.dir, snapshotName(h)))
	}
	l.validSnaps = append([]uint64(nil), l.validSnaps[keepFrom:]...)
	oldest := l.validSnaps[0]
	segs, err := listSegments(l.dir)
	if err != nil {
		return
	}
	// Segment i holds heights [start_i, start_{i+1}-1]; it is prunable
	// when that whole range is at or below the oldest retained snapshot.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start <= oldest+1 {
			_ = os.Remove(segs[i].path)
		}
	}
	l.syncDir()
}
