package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// makeBlocks mines n consecutive real blocks (serial engine, simulated
// time) so WAL tests exercise the same bytes production does. It returns
// the blocks and the genesis world's encoded state per height boundary.
func makeBlocks(t *testing.T, n, perBlock int) ([]chain.Block, []Snapshot) {
	t.Helper()
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindToken, Transactions: n * perBlock,
		ConflictPercent: 10, Seed: 7,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	root, err := wl.World.StateRoot()
	if err != nil {
		t.Fatalf("state root: %v", err)
	}
	eng := engine.MustNew(engine.KindSerial)
	parent := chain.GenesisHeader(root)
	blocks := make([]chain.Block, 0, n)
	snaps := make([]Snapshot, 0, n)
	for i := 0; i < n; i++ {
		calls := wl.Calls[i*perBlock : (i+1)*perBlock]
		res, err := miner.Mine(eng, runtime.NewSimRunner(), wl.World, parent, calls, engine.Options{Workers: 1})
		if err != nil {
			t.Fatalf("mine block %d: %v", i+1, err)
		}
		blocks = append(blocks, res.Block)
		state, err := wl.World.EncodeState()
		if err != nil {
			t.Fatalf("encode state: %v", err)
		}
		snaps = append(snaps, Snapshot{Header: res.Block.Header, State: state})
		parent = res.Block.Header
	}
	return blocks, snaps
}

// openReplay opens dir and replays everything, returning the recovered
// blocks.
func openReplay(t *testing.T, dir string, opts Options, from uint64) (*Log, []chain.Block) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var got []chain.Block
	if err := l.Blocks(from, func(b chain.Block) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatalf("blocks: %v", err)
	}
	return l, got
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	blocks, _ := makeBlocks(t, 4, 5)
	dir := t.TempDir()

	l, got := openReplay(t, dir, Options{}, 1)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d blocks", len(got))
	}
	for _, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Header.Number, err)
		}
	}
	if l.Height() != uint64(len(blocks)) {
		t.Fatalf("height %d, want %d", l.Height(), len(blocks))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Append(blocks[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	l2, got := openReplay(t, dir, Options{}, 1)
	defer l2.Close()
	if len(got) != len(blocks) {
		t.Fatalf("replayed %d blocks, want %d", len(got), len(blocks))
	}
	for i, b := range got {
		if b.Header.Hash() != blocks[i].Header.Hash() {
			t.Fatalf("block %d hash mismatch after replay", i+1)
		}
	}
}

func TestWALRejectsGapsAndStaleAppends(t *testing.T) {
	blocks, _ := makeBlocks(t, 3, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	if err := l.Append(blocks[1]); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append: %v, want ErrGap", err)
	}
	if err := l.Append(blocks[0]); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append(blocks[0]); !errors.Is(err, ErrGap) {
		t.Fatalf("duplicate append: %v, want ErrGap", err)
	}
	// While l is open, the directory is exclusively locked.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open of a live dir: %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Appending before replay on a dir that has a WAL must refuse.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if err := l2.Append(blocks[1]); !errors.Is(err, ErrNotReplayed) {
		t.Fatalf("append before replay: %v, want ErrNotReplayed", err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	blocks, _ := makeBlocks(t, 3, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for _, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the final record: chop bytes off the segment file, as a crash
	// mid-write would.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	info, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, info.Size()-7); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	l2, got := openReplay(t, dir, Options{}, 1)
	if len(got) != len(blocks)-1 {
		t.Fatalf("recovered %d blocks, want %d (torn tail dropped)", len(got), len(blocks)-1)
	}
	// The torn record was physically truncated; re-appending the lost
	// block must extend the log cleanly and survive another reopen.
	if err := l2.Append(blocks[len(blocks)-1]); err != nil {
		t.Fatalf("re-append after truncation: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l3, got := openReplay(t, dir, Options{}, 1)
	defer l3.Close()
	if len(got) != len(blocks) {
		t.Fatalf("after repair: %d blocks, want %d", len(got), len(blocks))
	}
}

// corruptWAL flips one byte at off in the (single) segment file.
func corruptWAL(t *testing.T, dir string, off int) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func writeWAL(t *testing.T, dir string, blocks []chain.Block) {
	t.Helper()
	l, _ := openReplay(t, dir, Options{}, 1)
	for _, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestWALCorruptMidSegmentRefuses: a bad record with intact records
// behind it may be hiding fsync-acknowledged blocks; truncating there
// would silently rewind durable history, so recovery must refuse.
func TestWALCorruptMidSegmentRefuses(t *testing.T) {
	blocks, _ := makeBlocks(t, 3, 4)
	dir := t.TempDir()
	writeWAL(t, dir, blocks)

	first, _ := chain.MarshalBlock(blocks[0])
	corruptWAL(t, dir, frameHeaderLen+len(first)+frameHeaderLen+10) // inside record 2's payload

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if err := l2.Blocks(1, func(chain.Block) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption: %v, want ErrCorrupt (records behind the damage)", err)
	}
}

// TestWALCorruptFinalRecordTruncates: damage in the very last record is
// indistinguishable from an interrupted append — nothing is behind it,
// so it is dropped and the log continues from the surviving prefix.
func TestWALCorruptFinalRecordTruncates(t *testing.T) {
	blocks, _ := makeBlocks(t, 3, 4)
	dir := t.TempDir()
	writeWAL(t, dir, blocks)

	segs, _ := listSegments(dir)
	info, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	corruptWAL(t, dir, int(info.Size())-5) // inside the final record's payload

	l2, got := openReplay(t, dir, Options{}, 1)
	defer l2.Close()
	if len(got) != len(blocks)-1 {
		t.Fatalf("recovered %d blocks, want %d (bad final record dropped)", len(got), len(blocks)-1)
	}
	if got[len(got)-1].Header.Hash() != blocks[len(blocks)-2].Header.Hash() {
		t.Fatal("surviving prefix mismatch")
	}
}

func TestSnapshotRoundTripAndRecoveryCut(t *testing.T) {
	blocks, snaps := makeBlocks(t, 5, 4)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for i, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		if i == 2 { // snapshot at height 3
			if err := l.WriteSnapshot(snaps[2]); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := l2.LatestSnapshot()
	if s == nil || s.Height() != 3 {
		t.Fatalf("latest snapshot %v, want height 3", s)
	}
	if !bytes.Equal(s.State, snaps[2].State) {
		t.Fatal("snapshot state bytes changed across reopen")
	}
	// Recovery replays only the tail after the snapshot.
	var got []chain.Block
	if err := l2.Blocks(s.Height()+1, func(b chain.Block) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatalf("blocks: %v", err)
	}
	if len(got) != 2 || got[0].Header.Number != 4 {
		t.Fatalf("tail replay %d blocks from %d, want 2 from 4", len(got), got[0].Header.Number)
	}
	l2.Close()

	// No stray temp files (atomic write discipline).
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestSnapshotRotationAndPruning(t *testing.T) {
	blocks, snaps := makeBlocks(t, 6, 3)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for i, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		if (i+1)%2 == 0 { // snapshots at heights 2, 4, 6
			if err := l.WriteSnapshot(snaps[i]); err != nil {
				t.Fatalf("snapshot at %d: %v", i+1, err)
			}
		}
	}
	l.Close()

	heights, err := listSnapshots(dir)
	if err != nil {
		t.Fatalf("list snapshots: %v", err)
	}
	if len(heights) != retainedSnapshots || heights[0] != 4 || heights[1] != 6 {
		t.Fatalf("retained snapshots %v, want [4 6]", heights)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("list segments: %v", err)
	}
	// Segments holding only heights <= 4 are pruned; the segment feeding
	// the newest retained snapshot's tail stays.
	for _, seg := range segs {
		if seg.start < 5 {
			t.Fatalf("segment %s should have been pruned", seg.path)
		}
	}
	// The pruned log still recovers: snapshot 6 + empty tail.
	l2, got := openReplay(t, dir, Options{}, 7)
	defer l2.Close()
	if s := l2.LatestSnapshot(); s == nil || s.Height() != 6 {
		t.Fatalf("latest snapshot after pruning: %v", s)
	}
	if len(got) != 0 {
		t.Fatalf("tail after snapshot 6: %d blocks", len(got))
	}
}

func TestSnapshotFileCorruptionFallsBack(t *testing.T) {
	blocks, snaps := makeBlocks(t, 4, 3)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for i, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		if i == 1 || i == 3 {
			if err := l.WriteSnapshot(snaps[i]); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	l.Close()

	// Rot the newest snapshot file; Open must fall back to the older one.
	path := filepath.Join(dir, snapshotName(4))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if s := l2.LatestSnapshot(); s == nil || s.Height() != 2 {
		t.Fatalf("fallback snapshot %v, want height 2", s)
	}
}

// TestAllSnapshotsCorruptRefusesWithoutDestroying: when every snapshot
// is unreadable and the WAL's early segments were already pruned,
// recovery must refuse (the history genuinely cannot be rebuilt) — and
// crucially must not delete anything while failing, so an operator can
// still salvage the directory.
func TestAllSnapshotsCorruptRefusesWithoutDestroying(t *testing.T) {
	blocks, snaps := makeBlocks(t, 6, 3)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for i, b := range blocks {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		if (i+1)%2 == 0 {
			if err := l.WriteSnapshot(snaps[i]); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	l.Close()

	// Rot every retained snapshot.
	for _, h := range []uint64{4, 6} {
		path := filepath.Join(dir, snapshotName(h))
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s := l2.LatestSnapshot(); s != nil {
		t.Fatalf("corrupt snapshots reported as valid: height %d", s.Height())
	}
	// A genesis re-checkpoint (what node.New would write on a dir it
	// believes fresh) must not let prune anchor on the corrupt names and
	// delete the surviving segments.
	if err := l2.WriteSnapshot(Snapshot{Header: chain.GenesisHeader(types.HashString("g")), State: []byte("x")}); err != nil {
		t.Fatalf("genesis snapshot: %v", err)
	}
	segsBefore, _ := listSegments(dir)
	if err := l2.Blocks(1, func(chain.Block) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over the pruned gap: %v, want ErrCorrupt", err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsBefore) == 0 || len(segsAfter) != len(segsBefore) {
		t.Fatalf("failed recovery changed the segment set: %d -> %d", len(segsBefore), len(segsAfter))
	}
	l2.Close()
}

func TestInstallSnapshotDropsHistory(t *testing.T) {
	blocks, snaps := makeBlocks(t, 4, 3)
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	for _, b := range blocks[:2] {
		if err := l.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Fast-sync: adopt a checkpoint way past the local WAL.
	if err := l.InstallSnapshot(snaps[3]); err != nil {
		t.Fatalf("install: %v", err)
	}
	if l.Height() != 4 {
		t.Fatalf("height after install %d, want 4", l.Height())
	}
	segs, _ := listSegments(dir)
	if len(segs) != 0 {
		t.Fatalf("%d stale segments survived install", len(segs))
	}
	if err := l.Append(blocks[2]); !errors.Is(err, ErrGap) {
		t.Fatalf("append below installed height: %v, want ErrGap", err)
	}
	l.Close()

	l2, got := openReplay(t, dir, Options{}, 5)
	defer l2.Close()
	if s := l2.LatestSnapshot(); s == nil || s.Height() != 4 {
		t.Fatalf("reopened snapshot %v, want height 4", s)
	}
	if len(got) != 0 {
		t.Fatalf("replayed %d blocks from dropped history", len(got))
	}
}

func TestSyncPolicies(t *testing.T) {
	blocks, _ := makeBlocks(t, 4, 3)
	for _, opts := range []Options{{SyncEvery: 1}, {SyncEvery: 3}, {SyncEvery: -1}} {
		dir := t.TempDir()
		l, _ := openReplay(t, dir, opts, 1)
		for _, b := range blocks {
			if err := l.Append(b); err != nil {
				t.Fatalf("append (SyncEvery=%d): %v", opts.SyncEvery, err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		l.Close()
		l2, got := openReplay(t, dir, opts, 1)
		l2.Close()
		if len(got) != len(blocks) {
			t.Fatalf("SyncEvery=%d: recovered %d blocks, want %d", opts.SyncEvery, len(got), len(blocks))
		}
	}
}

func TestPoolSaveTakeConsumes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openReplay(t, dir, Options{}, 1)
	defer l.Close()
	calls := []contract.Call{
		{Sender: types.AddressFromUint64(1), Contract: types.AddressFromUint64(2),
			Function: "transfer", Args: []any{types.AddressFromUint64(3), uint64(5)}, GasLimit: 1000},
		{Sender: types.AddressFromUint64(4), Contract: types.AddressFromUint64(2),
			Function: "vote", Args: []any{"prop", true, types.Amount(1)}, GasLimit: 2000},
	}
	if err := l.SavePool(calls); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := l.TakePool()
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if len(got) != 2 || got[0].Function != "transfer" || got[1].Args[1].(bool) != true {
		t.Fatalf("pool round trip: %+v", got)
	}
	if v, ok := got[0].Args[1].(uint64); !ok || v != 5 {
		t.Fatalf("arg type lost: %T", got[0].Args[1])
	}
	// Consumed: a second take finds nothing.
	again, err := l.TakePool()
	if err != nil || again != nil {
		t.Fatalf("second take: %v %v", again, err)
	}
	// Saving empty clears any file.
	if err := l.SavePool(calls); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := l.SavePool(nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if got, _ := l.TakePool(); got != nil {
		t.Fatalf("cleared pool returned %v", got)
	}
}
