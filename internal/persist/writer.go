package persist

import (
	"sync"

	"contractstm/internal/chain"
)

// Writer is the asynchronous group-commit appender the pipelined node
// persists through: callers enqueue sealed blocks and continue executing
// the next one while a single background goroutine drains the queue into
// the WAL. Every drain is one Log.AppendGroup — whatever accumulated
// while the previous fsync ran lands under a single fsync, so group sizes
// grow exactly when the disk is the bottleneck. Completion callbacks fire
// in height order with the durability verdict; after the first failure
// the writer latches and every queued or later block fails fast, because
// a WAL with a hole after height N can never accept N+2.
type Writer struct {
	log *Log

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds blocks awaiting the next group commit.
	queue []writeReq
	// busy marks a drain in progress (queue already taken by the loop).
	busy bool
	// err is the latched first failure; every later enqueue fails with it.
	err error
	// closing stops the loop once the queue drains.
	closing bool
	// stopped closes when the loop has exited.
	stopped chan struct{}
}

type writeReq struct {
	block chain.Block
	done  func(error)
}

// NewWriter starts a writer over an open, replayed log. Callers own
// Close (or Kill on the crash path).
func NewWriter(l *Log) *Writer {
	w := &Writer{log: l, stopped: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// Enqueue submits one block for asynchronous append. done is called
// exactly once — from the writer goroutine, in enqueue (= height) order —
// with nil once the block is acknowledged per the log's sync policy, or
// with the failure that voided it. Enqueue itself never blocks on I/O.
func (w *Writer) Enqueue(b chain.Block, done func(error)) {
	w.mu.Lock()
	if w.closing {
		err := w.err
		w.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		done(err)
		return
	}
	w.queue = append(w.queue, writeReq{block: b, done: done})
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Append is the synchronous form of Enqueue: it returns once the block's
// durability verdict is in. Non-pipelined appenders (a follower's
// AcceptBlock on a node whose miner pipelines) go through here so their
// WAL writes serialize behind any in-flight mined blocks.
func (w *Writer) Append(b chain.Block) error {
	ch := make(chan error, 1)
	w.Enqueue(b, func(err error) { ch <- err })
	return <-ch
}

// Flush blocks until every enqueued block has its durability verdict and
// returns the latched error, if any. It does not prevent concurrent
// enqueues; callers quiesce first when they need a stable boundary.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for (len(w.queue) > 0 || w.busy) && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// Close drains the queue, stops the loop and returns the latched error.
// It does not close the underlying log — the node owns that.
func (w *Writer) Close() error {
	w.mu.Lock()
	w.closing = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.stopped
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Kill stops the writer without draining — the crash-simulation path.
// Queued blocks fail with ErrClosed; whatever the loop already handed to
// the log may or may not be durable, which is exactly the ambiguity a
// real crash leaves.
func (w *Writer) Kill() {
	w.mu.Lock()
	w.closing = true
	if w.err == nil {
		w.err = ErrClosed
	}
	pending := w.queue
	w.queue = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, req := range pending {
		req.done(ErrClosed)
	}
	<-w.stopped
}

// Err reports the latched failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Writer) loop() {
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closing {
			w.cond.Wait()
		}
		if len(w.queue) == 0 {
			w.mu.Unlock()
			close(w.stopped)
			return
		}
		batch := w.queue
		w.queue = nil
		w.busy = true
		err := w.err
		w.mu.Unlock()

		if err == nil {
			blocks := make([]chain.Block, len(batch))
			for i, req := range batch {
				blocks[i] = req.block
			}
			err = w.log.AppendGroup(blocks)
		}
		// Verdicts in height order, outside the lock: on group failure
		// every block in it failed (AppendGroup is all-or-nothing).
		for _, req := range batch {
			req.done(err)
		}

		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		w.busy = false
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}
