package persist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"contractstm/internal/contract"
	"contractstm/internal/types"
)

// Mempool persistence: a graceful shutdown saves the still-pending calls
// so a restarted node's pool picks up where it left off (submitted but
// unmined transactions must not evaporate across a restart). The file is
// consumed on recovery — loading deletes it — so a later crash can never
// resurrect calls that were already mined in between.

// poolFile is the mempool save file name inside a data directory.
const poolFile = "pool.gob"

// maxPoolBytes bounds the pool file read (a pool is bounded by client
// traffic, not block size; 256 MB is far beyond any sane backlog).
const maxPoolBytes = 256 << 20

// registerPoolTypes registers the call-argument types (the shared wire
// value set) for gob round-tripping of []contract.Call.
func registerPoolTypes() { types.RegisterWireValues() }

// SavePool atomically writes the pending calls to the data directory.
// An empty slice removes any existing save (nothing pending).
func (l *Log) SavePool(calls []contract.Call) error {
	path := filepath.Join(l.dir, poolFile)
	if len(calls) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: clear pool: %w", err)
		}
		return nil
	}
	registerPoolTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(calls); err != nil {
		return fmt.Errorf("persist: encode pool: %w", err)
	}
	// Enforce the read-side cap at write time: a save TakePool could
	// never read back would brick every restart until the operator
	// deletes the file by hand. Refusing here loses only the pool, never
	// the chain.
	if buf.Len() > maxPoolBytes {
		return fmt.Errorf("persist: pool encodes to %d bytes, max %d: refusing to save an unloadable file",
			buf.Len(), maxPoolBytes)
	}
	tmp, err := os.CreateTemp(l.dir, "pool-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: pool temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeFrame(tmp, buf.Bytes()); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: write pool: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("persist: pool sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: pool close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: pool rename: %w", err)
	}
	l.syncDir()
	return nil
}

// TakePool loads and consumes the saved mempool: the file is removed on
// a successful read so the calls are restored exactly once. A missing
// file returns (nil, nil); a damaged file is an error (clients' calls
// should not vanish silently).
func (l *Log) TakePool() ([]contract.Call, error) {
	registerPoolTypes()
	path := filepath.Join(l.dir, poolFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: open pool: %w", err)
	}
	payload, err := readFrame(f, maxPoolBytes)
	_ = f.Close()
	if err != nil {
		return nil, fmt.Errorf("persist: read pool: %w", err)
	}
	var calls []contract.Call
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&calls); err != nil {
		return nil, fmt.Errorf("persist: decode pool: %w", err)
	}
	if err := os.Remove(path); err != nil {
		return nil, fmt.Errorf("persist: consume pool: %w", err)
	}
	return calls, nil
}
