// Package txpool implements the miner-side transaction pool: clients
// submit contract calls, and the miner selects the next block from them.
//
// Besides the baseline FIFO selection, the pool implements the
// conflict-spreading policy the paper sketches in §7.3: "Miners could also
// choose transactions so as to reduce the likelihood of conflict, say by
// including only those contracts that operate on disjoint data sets."
// Statically, a miner cannot know the exact abstract locks a Turing-
// complete contract will take (§1), but it can use cheap syntactic hints —
// the target contract and the sender — to spread obviously-colliding
// transactions across different blocks. BenchmarkTxPoolSelection measures
// the effect on miner retries and speedup.
package txpool

import (
	"errors"
	"sync"

	"contractstm/internal/contract"
	"contractstm/internal/types"
)

// Policy selects how the pool picks a block's transactions.
type Policy int

const (
	// PolicyFIFO takes transactions strictly in arrival order.
	PolicyFIFO Policy = iota + 1
	// PolicySpread takes transactions in arrival order but defers, within
	// the scanned window, transactions whose (contract, sender) hint
	// collides with one already chosen for this block — the paper's
	// "disjoint data sets" heuristic. Deferred transactions stay queued
	// for later blocks; no transaction is starved because each block's
	// scan starts at the queue head.
	PolicySpread
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicySpread:
		return "spread"
	default:
		return "policy?"
	}
}

// ErrEmpty is returned by Select on an empty pool.
var ErrEmpty = errors.New("txpool: empty")

// pending is one queued call with its arrival sequence.
type pending struct {
	call contract.Call
	seq  uint64
}

// Pool is a FIFO transaction queue with pluggable block selection.
// It is safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	queue   []pending
	nextSeq uint64
	// windowFactor bounds how far past the block size the spread policy
	// scans for non-colliding transactions (window = factor * blockSize).
	windowFactor int
	// conflictScore counts observed speculative retries per (contract,
	// function), fed back by the miner via ReportConflicts; the spread
	// policy caps only functions with a positive score, so legitimately
	// disjoint traffic (withdraw, vote from distinct senders) is never
	// throttled. Scores decay geometrically every conflictDecayEvery
	// reports and the map is capped at maxConflictEntries, so a pool under
	// sustained traffic holds bounded memory and stale hot spots fade.
	conflictScore map[funcHint]int
	// reportedSinceDecay counts conflict reports since the last decay pass.
	reportedSinceDecay int
}

// conflictDecayEvery is how many reported conflicts trigger a decay pass
// (every score halves; zeroed entries are dropped).
const conflictDecayEvery = 256

// maxConflictEntries bounds the conflict-score map; when exceeded, the
// lowest-scored entries are evicted first.
const maxConflictEntries = 1024

// New returns an empty pool.
func New() *Pool {
	return &Pool{windowFactor: 4, conflictScore: make(map[funcHint]int)}
}

// ReportConflicts feeds back transactions that needed speculative retries
// in a mined block (miner.Stats.RetriedTxs); subsequent spread selections
// cap their (contract, function) groups.
func (p *Pool) ReportConflicts(calls []contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range calls {
		p.conflictScore[funcHint{contract: c.Contract, function: c.Function}]++
	}
	p.reportedSinceDecay += len(calls)
	if p.reportedSinceDecay >= conflictDecayEvery {
		p.reportedSinceDecay = 0
		for k, v := range p.conflictScore {
			if v /= 2; v == 0 {
				delete(p.conflictScore, k)
			} else {
				p.conflictScore[k] = v
			}
		}
	}
	for len(p.conflictScore) > maxConflictEntries {
		min := 0
		for _, v := range p.conflictScore {
			if min == 0 || v < min {
				min = v
			}
		}
		for k, v := range p.conflictScore {
			if v <= min && len(p.conflictScore) > maxConflictEntries {
				delete(p.conflictScore, k)
			}
		}
	}
}

// conflictEntries reports tracked (contract, function) groups (tests).
func (p *Pool) conflictEntries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conflictScore)
}

// Submit enqueues a call.
func (p *Pool) Submit(call contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue = append(p.queue, pending{call: call, seq: p.nextSeq})
	p.nextSeq++
}

// SubmitAll enqueues calls in order, atomically: the whole batch lands
// under one lock acquisition, so concurrent submitters and Select calls
// can never interleave with (or observe a prefix of) the batch.
func (p *Pool) SubmitAll(calls []contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range calls {
		p.queue = append(p.queue, pending{call: c, seq: p.nextSeq})
		p.nextSeq++
	}
}

// Requeue returns selected-but-unmined calls to the *front* of the queue
// in their original relative order: a failed mining attempt (execution
// error, append race) must neither drop nor reorder client transactions.
func (p *Pool) Requeue(calls []contract.Call) {
	if len(calls) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pre := make([]pending, 0, len(calls)+len(p.queue))
	for _, c := range calls {
		pre = append(pre, pending{call: c, seq: p.nextSeq})
		p.nextSeq++
	}
	p.queue = append(pre, p.queue...)
}

// Len reports queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// PendingCalls returns a copy of every queued call in queue order: the
// persistence layer saves these on shutdown so a restarted node's
// mempool picks up where it left off.
func (p *Pool) PendingCalls() []contract.Call {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]contract.Call, len(p.queue))
	for i, pe := range p.queue {
		out[i] = pe.call
	}
	return out
}

// The spread policy uses two static conflict hints:
//
//   - senderHint (contract, sender): two calls from one sender to one
//     contract almost certainly touch the same per-sender state
//     (double-votes, repeated withdrawals); at most one per block.
//   - funcHint (contract, function): many calls to one function of one
//     contract may pile onto shared state (bidPlusOne on the highest
//     bid); capped at a fraction of the block.
//
// Both are heuristics — a Turing-complete contract's exact lock set is
// unknowable statically (§1) — and both only defer, never drop.
type senderHint struct {
	contract types.Address
	sender   types.Address
}

type funcHint struct {
	contract types.Address
	function string
}

// Select removes and returns up to blockSize transactions according to the
// policy. It returns ErrEmpty when nothing is queued.
func (p *Pool) Select(policy Policy, blockSize int) ([]contract.Call, error) {
	if blockSize <= 0 {
		return nil, errors.New("txpool: non-positive block size")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil, ErrEmpty
	}
	switch policy {
	case PolicySpread:
		return p.selectSpread(blockSize), nil
	default:
		return p.selectFIFO(blockSize), nil
	}
}

func (p *Pool) selectFIFO(blockSize int) []contract.Call {
	n := blockSize
	if n > len(p.queue) {
		n = len(p.queue)
	}
	out := make([]contract.Call, 0, n)
	for _, pe := range p.queue[:n] {
		out = append(out, pe.call)
	}
	p.queue = append([]pending(nil), p.queue[n:]...)
	return out
}

func (p *Pool) selectSpread(blockSize int) []contract.Call {
	window := blockSize * p.windowFactor
	if window > len(p.queue) {
		window = len(p.queue)
	}
	funcCap := blockSize / 8
	if funcCap < 1 {
		funcCap = 1
	}
	seenSender := make(map[senderHint]bool, blockSize)
	funcCount := make(map[funcHint]int, blockSize)
	out := make([]contract.Call, 0, blockSize)
	taken := make([]bool, window)
	for i := 0; i < window && len(out) < blockSize; i++ {
		c := p.queue[i].call
		sh := senderHint{contract: c.Contract, sender: c.Sender}
		fh := funcHint{contract: c.Contract, function: c.Function}
		if seenSender[sh] {
			continue
		}
		if p.conflictScore[fh] > 0 && funcCount[fh] >= funcCap {
			continue
		}
		seenSender[sh] = true
		funcCount[fh]++
		taken[i] = true
		out = append(out, c)
	}
	// If the window was all-colliding, fall back to FIFO for the
	// remainder so blocks never run empty while work is queued.
	for i := 0; i < window && len(out) < blockSize; i++ {
		if taken[i] {
			continue
		}
		taken[i] = true
		out = append(out, p.queue[i].call)
	}
	remaining := make([]pending, 0, len(p.queue)-len(out))
	for i, pe := range p.queue {
		if i < window && taken[i] {
			continue
		}
		remaining = append(remaining, pe)
	}
	p.queue = remaining
	return out
}
