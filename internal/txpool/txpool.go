// Package txpool implements the miner-side transaction pool: clients
// submit contract calls, and the miner selects the next block from them.
//
// Besides the baseline FIFO selection, the pool implements the
// conflict-spreading policy the paper sketches in §7.3: "Miners could also
// choose transactions so as to reduce the likelihood of conflict, say by
// including only those contracts that operate on disjoint data sets."
// Statically, a miner cannot know the exact abstract locks a Turing-
// complete contract will take (§1), but it can use cheap syntactic hints —
// the target contract and the sender — to spread obviously-colliding
// transactions across different blocks. BenchmarkTxPoolSelection measures
// the effect on miner retries and speedup.
//
// PolicyLockHint refines the idea with feedback from the execution engine:
// every call carries a set of static lock-hints — (contract, function)
// plus refinements by sender and by address-typed arguments — and the
// happens-before edges of mined blocks are reported back as conflict
// pairs. A hint two conflicting calls *shared* is evidence that it
// approximates a real abstract lock, so later selections avoid packing
// two calls with the same hot hint into one block. Unlike PolicySpread's
// per-function cap, this throttles only the hints that actually
// conflicted, so a workload with a few hot keys (see workload.KindHotCold)
// keeps its cold majority flowing at full block size.
package txpool

import (
	"errors"
	"sync"

	"contractstm/internal/contract"
	"contractstm/internal/types"
)

// Policy selects how the pool picks a block's transactions.
type Policy int

const (
	// PolicyFIFO takes transactions strictly in arrival order.
	PolicyFIFO Policy = iota + 1
	// PolicySpread takes transactions in arrival order but defers, within
	// the scanned window, transactions whose (contract, sender) hint
	// collides with one already chosen for this block — the paper's
	// "disjoint data sets" heuristic. Deferred transactions stay queued
	// for later blocks; no transaction is starved because each block's
	// scan starts at the queue head.
	PolicySpread
	// PolicyLockHint packs blocks using static lock-hints with engine
	// feedback: a call is deferred when one of its hints both (a) was
	// shared by a conflicting pair in an earlier block (positive score)
	// and (b) is already claimed by a call chosen for this block. Hints
	// with no conflict evidence never throttle anything.
	PolicyLockHint
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicySpread:
		return "spread"
	case PolicyLockHint:
		return "lockhint"
	default:
		return "policy?"
	}
}

// ParsePolicy resolves a policy name as used by command-line flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return PolicyFIFO, nil
	case "spread":
		return PolicySpread, nil
	case "lockhint":
		return PolicyLockHint, nil
	default:
		return 0, errors.New("txpool: unknown policy " + s + " (want fifo, spread or lockhint)")
	}
}

// ErrEmpty is returned by Select on an empty pool.
var ErrEmpty = errors.New("txpool: empty")

// pending is one queued call with its arrival sequence. The queue is kept
// sorted by seq at all times: Submit appends increasing seqs, selection
// removes entries without reordering, and every requeue path re-inserts
// by seq — that invariant is what lets an aborted in-flight batch return
// to exactly its original position relative to everything else. The
// embedded Entry carries the call plus the lazily-cached lock-hints
// (see selection.go).
type pending struct {
	Entry
	seq int64
}

// Pool is a FIFO transaction queue with pluggable block selection.
// It is safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	queue   []pending
	nextSeq int64
	// windowFactor bounds how far past the block size the spread and
	// lock-hint policies scan for non-colliding transactions
	// (window = factor * blockSize).
	windowFactor int
	// Scores is the engine's conflict feedback (see selection.go),
	// guarded by mu like the queue.
	Scores
	// outstandingLow is a monotone floor under every sequence number ever
	// handed out by SelectBatch (valid once hasOutstanding is set). The
	// legacy Requeue places its entries strictly below it, so a
	// front-requeued call can never collide with — or later interleave
	// into the middle of — an in-flight batch that RequeueBatch merges
	// back by its original seqs.
	outstandingLow int64
	hasOutstanding bool
}

// conflictDecayEvery is how many reported conflicts trigger a decay pass
// (every score halves; zeroed entries are dropped).
const conflictDecayEvery = 256

// maxConflictEntries bounds the conflict-score and hint-score maps; when
// exceeded, the lowest-scored entries are evicted first.
const maxConflictEntries = 1024

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		windowFactor: 4,
		Scores:       NewScores(),
	}
}

// ReportConflicts feeds back transactions that needed speculative retries
// in a mined block (miner.Stats.RetriedTxs); subsequent spread selections
// cap their (contract, function) groups.
func (p *Pool) ReportConflicts(calls []contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Scores.AddConflicts(calls)
}

// ReportConflictPairs feeds back pairs of calls connected by a
// happens-before edge in a mined block (engine.Stats.ConflictPairs). For
// each pair the pool scores the refined lock-hints both calls share —
// evidence that the shared hint approximates a real abstract lock. Pairs
// sharing no refinement score their coarse (contract, function) hints
// instead. PolicyLockHint reads these scores.
func (p *Pool) ReportConflictPairs(pairs [][2]contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Scores.AddConflictPairs(pairs)
}

// decayScores halves every score, dropping zeroed entries.
func decayScores[K comparable](m map[K]int) {
	for k, v := range m {
		if v /= 2; v == 0 {
			delete(m, k)
		} else {
			m[k] = v
		}
	}
}

// capScores evicts lowest-scored entries beyond maxConflictEntries.
func capScores[K comparable](m map[K]int) {
	for len(m) > maxConflictEntries {
		min := 0
		for _, v := range m {
			if min == 0 || v < min {
				min = v
			}
		}
		for k, v := range m {
			if v <= min && len(m) > maxConflictEntries {
				delete(m, k)
			}
		}
	}
}

// conflictEntries reports tracked (contract, function) groups (tests).
func (p *Pool) conflictEntries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conflictScore)
}

// hintEntries reports tracked lock-hint groups (tests).
func (p *Pool) hintEntries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.hintScore)
}

// Submit enqueues a call.
func (p *Pool) Submit(call contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue = append(p.queue, pending{Entry: Entry{Call: call}, seq: p.nextSeq})
	p.nextSeq++
}

// SubmitAll enqueues calls in order, atomically: the whole batch lands
// under one lock acquisition, so concurrent submitters and Select calls
// can never interleave with (or observe a prefix of) the batch.
func (p *Pool) SubmitAll(calls []contract.Call) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range calls {
		p.queue = append(p.queue, pending{Entry: Entry{Call: c}, seq: p.nextSeq})
		p.nextSeq++
	}
}

// Selection is a selected batch plus the bookkeeping needed to return it
// to the pool at exactly its original arrival position. A pipelined miner
// holds several Selections in flight at once; when an aborted block's
// calls come back via RequeueBatch, the arrival sequence — not the abort
// order — decides where they land, so no interleaving of aborts and new
// submissions can reorder client transactions.
type Selection struct {
	Calls []contract.Call
	seqs  []int64
}

// Len reports the selected call count.
func (s Selection) Len() int { return len(s.Calls) }

// SelectBatch removes and returns up to blockSize transactions according
// to the policy, remembering their arrival sequence for RequeueBatch. It
// returns ErrEmpty when nothing is queued.
func (p *Pool) SelectBatch(policy Policy, blockSize int) (Selection, error) {
	if blockSize <= 0 {
		return Selection{}, errors.New("txpool: non-positive block size")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return Selection{}, ErrEmpty
	}
	var taken []pending
	switch policy {
	case PolicySpread:
		taken = p.selectSpread(blockSize)
	case PolicyLockHint:
		taken = p.selectLockHint(blockSize)
	default:
		taken = p.selectFIFO(blockSize)
	}
	sel := Selection{Calls: make([]contract.Call, len(taken)), seqs: make([]int64, len(taken))}
	for i, pe := range taken {
		sel.Calls[i] = pe.Call
		sel.seqs[i] = pe.seq
		if !p.hasOutstanding || pe.seq < p.outstandingLow {
			p.outstandingLow, p.hasOutstanding = pe.seq, true
		}
	}
	return sel, nil
}

// Select removes and returns up to blockSize transactions according to the
// policy. It returns ErrEmpty when nothing is queued.
func (p *Pool) Select(policy Policy, blockSize int) ([]contract.Call, error) {
	sel, err := p.SelectBatch(policy, blockSize)
	if err != nil {
		return nil, err
	}
	return sel.Calls, nil
}

// RequeueBatch returns a selected-but-unmined batch to the pool at its
// original arrival position: entries are merged back by their arrival
// sequence. Batches may be requeued in any order — a pipelined miner
// aborting several in-flight blocks gets the original client order back
// regardless of which abort lands first, and calls submitted after the
// batch was selected stay behind it.
func (p *Pool) RequeueBatch(sel Selection) {
	if len(sel.Calls) == 0 {
		return
	}
	// Order the batch itself by arrival (selection policies may have
	// reordered within the block).
	batch := make([]pending, len(sel.Calls))
	for i := range sel.Calls {
		batch[i] = pending{Entry: Entry{Call: sel.Calls[i]}, seq: sel.seqs[i]}
	}
	sortPending(batch)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue = mergeBySeq(batch, p.queue)
}

// sortPending sorts by seq (insertion sort; batches are block-sized and
// nearly sorted already).
func sortPending(ps []pending) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].seq < ps[j-1].seq; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// mergeBySeq merges two seq-sorted runs into one.
func mergeBySeq(a, b []pending) []pending {
	out := make([]pending, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq <= b[j].seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Requeue returns selected-but-unmined calls to the *front* of the queue
// in their given order: a failed mining attempt (execution error, append
// race) must neither drop nor reorder client transactions. Callers that
// hold a Selection should prefer RequeueBatch, which restores the calls'
// true arrival position; Requeue places them ahead of everything queued
// or ever selected, assigning sequence numbers below both the queue
// minimum and the lowest seq any in-flight batch holds — so the queue's
// seq ordering stays intact and a batch merged back later can neither
// collide with nor split a legacy-requeued run.
func (p *Pool) Requeue(calls []contract.Call) {
	if len(calls) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	base := p.nextSeq
	if len(p.queue) > 0 {
		base = p.queue[0].seq
	}
	if p.hasOutstanding && p.outstandingLow < base {
		base = p.outstandingLow
	}
	pre := make([]pending, 0, len(calls)+len(p.queue))
	for i, c := range calls {
		pre = append(pre, pending{Entry: Entry{Call: c}, seq: base - int64(len(calls)) + int64(i)})
	}
	// These seqs sit below anything in flight: they are the new floor.
	p.outstandingLow, p.hasOutstanding = pre[0].seq, true
	p.queue = append(pre, p.queue...)
}

// Len reports queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// PendingCalls returns a copy of every queued call in queue order: the
// persistence layer saves these on shutdown so a restarted node's
// mempool picks up where it left off.
func (p *Pool) PendingCalls() []contract.Call {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]contract.Call, len(p.queue))
	for i, pe := range p.queue {
		out[i] = pe.Call
	}
	return out
}

// The spread policy uses two static conflict hints:
//
//   - senderHint (contract, sender): two calls from one sender to one
//     contract almost certainly touch the same per-sender state
//     (double-votes, repeated withdrawals); at most one per block.
//   - funcHint (contract, function): many calls to one function of one
//     contract may pile onto shared state (bidPlusOne on the highest
//     bid); capped at a fraction of the block.
//
// Both are heuristics — a Turing-complete contract's exact lock set is
// unknowable statically (§1) — and both only defer, never drop.
type senderHint struct {
	contract types.Address
	sender   types.Address
}

type funcHint struct {
	contract types.Address
	function string
}

// lockHint is the lock-hint policy's static approximation of one abstract
// lock. Two shapes share the struct: the coarse form (refined == false)
// is a per-function funcHint, and the refined form names an address the
// call touches — its sender or an address-typed argument — which is what
// a per-key lock (a balance, a voter record) is actually keyed by.
// Refined hints are deliberately role-free: a transfer A→B and a transfer
// B→A touch the same two balances even though sender and argument swap
// roles, and the policy must see that overlap to keep the pair apart.
// The key is all comparable value types (no string rendering): hintsOf
// runs for every window entry of every selection scan.
type lockHint struct {
	contract types.Address
	function string
	addr     types.Address
	refined  bool
}

func coarseHint(c contract.Call) lockHint {
	return lockHint{contract: c.Contract, function: c.Function}
}

// hintsOf derives a call's static lock-hints: refined per-address hints
// first (sender, then address arguments), the coarse (contract, function)
// hint last.
func hintsOf(c contract.Call) []lockHint {
	hints := make([]lockHint, 0, len(c.Args)+2)
	hints = append(hints, lockHint{contract: c.Contract, addr: c.Sender, refined: true})
	for _, a := range c.Args {
		if addr, ok := a.(types.Address); ok {
			hints = append(hints, lockHint{contract: c.Contract, addr: addr, refined: true})
		}
	}
	return append(hints, coarseHint(c))
}

// Select removes and returns up to blockSize transactions... (see
// SelectBatch; this section hosts the per-policy selectors, which run
// under p.mu and mutate p.queue; the window scans themselves live in
// selection.go and are shared with the sharded mempool).

func (p *Pool) selectFIFO(blockSize int) []pending {
	n := blockSize
	if n > len(p.queue) {
		n = len(p.queue)
	}
	out := append([]pending(nil), p.queue[:n]...)
	p.queue = append([]pending(nil), p.queue[n:]...)
	return out
}

func (p *Pool) selectSpread(blockSize int) []pending {
	return p.takeWindow(PolicySpread, blockSize)
}

func (p *Pool) selectLockHint(blockSize int) []pending {
	return p.takeWindow(PolicyLockHint, blockSize)
}

// takeWindow runs the shared window scan over the queue's head
// (window = windowFactor * blockSize), removes the chosen entries and
// returns them in pick order. The scan caches lock-hints directly on
// the queue entries, so deferred calls keep their hints for the next
// selection.
func (p *Pool) takeWindow(policy Policy, blockSize int) []pending {
	window := blockSize * p.windowFactor
	if window > len(p.queue) {
		window = len(p.queue)
	}
	win := make([]*Entry, window)
	for i := range win {
		win[i] = &p.queue[i].Entry
	}
	idx := SelectWindow(policy, blockSize, win, &p.Scores)
	out := make([]pending, 0, len(idx))
	taken := make([]bool, window)
	for _, i := range idx {
		taken[i] = true
		out = append(out, p.queue[i])
	}
	remaining := make([]pending, 0, len(p.queue)-len(out))
	for i, pe := range p.queue {
		if i < window && taken[i] {
			continue
		}
		remaining = append(remaining, pe)
	}
	p.queue = remaining
	return out
}
