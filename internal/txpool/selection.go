// Selection core shared by the single-lock Pool and the sharded
// mempool: the per-policy window scans and the conflict-feedback
// scores they read. The Pool wraps these under its own mutex; the
// sharded pool (internal/mempool) merges per-shard queues into one
// window and calls the same scans, so both pools pick byte-identical
// blocks from the same window under the same policy.
package txpool

import "contractstm/internal/contract"

// Entry is one selectable call plus its cached static lock-hints.
// Both pool implementations embed it in their queue entries; the
// hint cache is filled lazily by the lock-hint scan (FIFO and spread
// selections never pay for it) and stays valid for the call's
// lifetime — hints are a pure function of the call.
type Entry struct {
	Call contract.Call
	// hints caches hintsOf(Call); nil until the lock-hint policy first
	// scans the entry.
	hints []lockHint
}

// Scores holds the engine's conflict feedback: per-(contract,function)
// retry counts read by the spread policy and per-lock-hint evidence
// read by the lock-hint policy. Methods are NOT synchronized — the
// owning pool serializes access under its own lock.
type Scores struct {
	// conflictScore counts observed speculative retries per (contract,
	// function); the spread policy caps only functions with a positive
	// score, so legitimately disjoint traffic is never throttled.
	// Scores decay geometrically every conflictDecayEvery reports and
	// the map is capped at maxConflictEntries.
	conflictScore map[funcHint]int
	// reportedSinceDecay counts conflict reports since the last decay pass.
	reportedSinceDecay int
	// hintScore scores static lock-hints by conflict evidence: a hint
	// both calls of a reported conflict pair share gets a point. Decays
	// and is capped exactly like conflictScore (separate counters).
	hintScore       map[lockHint]int
	pairsSinceDecay int
}

// NewScores returns an empty feedback table.
func NewScores() Scores {
	return Scores{
		conflictScore: make(map[funcHint]int),
		hintScore:     make(map[lockHint]int),
	}
}

// AddConflicts records transactions that needed speculative retries in
// a mined block. Caller must hold the owning pool's lock.
func (s *Scores) AddConflicts(calls []contract.Call) {
	for _, c := range calls {
		s.conflictScore[funcHint{contract: c.Contract, function: c.Function}]++
	}
	s.reportedSinceDecay += len(calls)
	if s.reportedSinceDecay >= conflictDecayEvery {
		s.reportedSinceDecay = 0
		decayScores(s.conflictScore)
	}
	capScores(s.conflictScore)
}

// AddConflictPairs records pairs of calls connected by a happens-before
// edge in a mined block, scoring the refined lock-hints both calls
// share (or their coarse hints when no refinement is shared). Caller
// must hold the owning pool's lock.
func (s *Scores) AddConflictPairs(pairs [][2]contract.Call) {
	for _, pr := range pairs {
		a, b := hintsOf(pr[0]), hintsOf(pr[1])
		shared := false
		for _, ha := range a {
			if !ha.refined {
				continue // coarse hint handled below
			}
			for _, hb := range b {
				if ha == hb {
					s.hintScore[ha]++
					shared = true
				}
			}
		}
		if !shared {
			s.hintScore[coarseHint(pr[0])]++
			s.hintScore[coarseHint(pr[1])]++
		}
	}
	s.pairsSinceDecay += len(pairs)
	if s.pairsSinceDecay >= conflictDecayEvery {
		s.pairsSinceDecay = 0
		decayScores(s.hintScore)
	}
	capScores(s.hintScore)
}

// SelectWindow picks up to blockSize entries from a selection window
// according to the policy, returning the chosen indices in pick order:
// policy-approved picks first (in scan order), then the FIFO backfill
// that tops up an under-full block from the deferred remainder. The
// window is the caller's candidate prefix — arrival-ordered for the
// single-lock pool, (priority, arrival)-merged for the sharded pool —
// and sc is the caller's feedback table. The lock-hint scan caches
// derived hints on the entries, so the caller must pass pointers into
// its real queue (and hold whatever lock guards it).
func SelectWindow(policy Policy, blockSize int, win []*Entry, sc *Scores) []int {
	switch policy {
	case PolicySpread:
		return selectWindowSpread(blockSize, win, sc)
	case PolicyLockHint:
		return selectWindowLockHint(blockSize, win, sc)
	default:
		n := blockSize
		if n > len(win) {
			n = len(win)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
}

func selectWindowSpread(blockSize int, win []*Entry, sc *Scores) []int {
	funcCap := blockSize / 8
	if funcCap < 1 {
		funcCap = 1
	}
	seenSender := make(map[senderHint]bool, blockSize)
	funcCount := make(map[funcHint]int, blockSize)
	idx := make([]int, 0, blockSize)
	taken := make([]bool, len(win))
	for i := 0; i < len(win) && len(idx) < blockSize; i++ {
		c := win[i].Call
		sh := senderHint{contract: c.Contract, sender: c.Sender}
		fh := funcHint{contract: c.Contract, function: c.Function}
		if seenSender[sh] {
			continue
		}
		if sc.conflictScore[fh] > 0 && funcCount[fh] >= funcCap {
			continue
		}
		seenSender[sh] = true
		funcCount[fh]++
		taken[i] = true
		idx = append(idx, i)
	}
	return backfillWindow(blockSize, taken, idx)
}

// selectWindowLockHint scans the window taking calls in window order,
// deferring a call only when one of its hints has positive conflict
// evidence AND is already claimed by a call chosen for this block.
// Coarse hints use a generous per-block cap instead of exclusivity (a
// hot function is not a single lock); refined hints are exclusive (one
// hot sender / hot key per block).
func selectWindowLockHint(blockSize int, win []*Entry, sc *Scores) []int {
	coarseCap := blockSize / 8
	if coarseCap < 1 {
		coarseCap = 1
	}
	claimed := make(map[lockHint]bool, blockSize)
	coarseCount := make(map[lockHint]int, blockSize)
	idx := make([]int, 0, blockSize)
	taken := make([]bool, len(win))
scan:
	for i := 0; i < len(win) && len(idx) < blockSize; i++ {
		if win[i].hints == nil {
			win[i].hints = hintsOf(win[i].Call)
		}
		hints := win[i].hints
		for _, h := range hints {
			if sc.hintScore[h] <= 0 {
				continue
			}
			if !h.refined {
				if coarseCount[h] >= coarseCap {
					continue scan
				}
			} else if claimed[h] {
				continue scan
			}
		}
		for _, h := range hints {
			if !h.refined {
				coarseCount[h]++
			} else {
				claimed[h] = true
			}
		}
		taken[i] = true
		idx = append(idx, i)
	}
	return backfillWindow(blockSize, taken, idx)
}

// backfillWindow tops up an under-full block FIFO-style from the
// window's deferred entries: blocks never run empty while work is
// queued.
func backfillWindow(blockSize int, taken []bool, idx []int) []int {
	for i := 0; i < len(taken) && len(idx) < blockSize; i++ {
		if taken[i] {
			continue
		}
		taken[i] = true
		idx = append(idx, i)
	}
	return idx
}
