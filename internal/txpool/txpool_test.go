package txpool

import (
	"errors"
	"sync"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func call(sender, target uint64, fn string) contract.Call {
	return contract.Call{
		Sender:   types.AddressFromUint64(sender),
		Contract: types.AddressFromUint64(target),
		Function: fn,
		GasLimit: 100_000,
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	p := New()
	for i := uint64(0); i < 5; i++ {
		p.Submit(call(i, 100, "f"))
	}
	got, err := p.Select(PolicyFIFO, 3)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	for i, c := range got {
		if c.Sender != types.AddressFromUint64(uint64(i)) {
			t.Fatalf("order broken at %d: %v", i, c.Sender)
		}
	}
	if p.Len() != 2 {
		t.Fatalf("remaining = %d", p.Len())
	}
}

func TestSelectEmpty(t *testing.T) {
	p := New()
	if _, err := p.Select(PolicyFIFO, 10); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := p.Select(PolicyFIFO, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestSelectFewerThanBlockSize(t *testing.T) {
	p := New()
	p.Submit(call(1, 100, "f"))
	got, err := p.Select(PolicyFIFO, 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	if p.Len() != 0 {
		t.Fatal("pool not drained")
	}
}

func TestSpreadDefersCollidingSenders(t *testing.T) {
	p := New()
	// Ten submissions from ONE sender plus five distinct senders.
	for i := 0; i < 10; i++ {
		p.Submit(call(7, 100, "vote"))
	}
	for i := uint64(20); i < 25; i++ {
		p.Submit(call(i, 100, "vote"))
	}
	got, err := p.Select(PolicySpread, 6)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("selected %d", len(got))
	}
	// At most one call from the hot sender in this block.
	hot := 0
	for _, c := range got {
		if c.Sender == types.AddressFromUint64(7) {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("hot sender appears %d times, want 1", hot)
	}
	// Nothing lost: the deferred ones are still queued.
	if p.Len() != 15-6 {
		t.Fatalf("remaining = %d, want 9", p.Len())
	}
}

func TestSpreadFallsBackWhenAllCollide(t *testing.T) {
	p := New()
	for i := 0; i < 8; i++ {
		p.Submit(call(7, 100, "vote"))
	}
	got, err := p.Select(PolicySpread, 4)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("all-colliding pool must still fill the block: got %d", len(got))
	}
}

func TestSpreadDrainsEverythingAcrossBlocks(t *testing.T) {
	p := New()
	for i := 0; i < 30; i++ {
		p.Submit(call(uint64(i%3), 100, "f")) // 3 hot senders
	}
	total := 0
	for p.Len() > 0 {
		got, err := p.Select(PolicySpread, 5)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if len(got) == 0 {
			t.Fatal("empty block with work queued")
		}
		total += len(got)
	}
	if total != 30 {
		t.Fatalf("drained %d, want 30", total)
	}
}

func TestConcurrentSubmit(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Submit(call(uint64(g*1000+i), 100, "f"))
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 400 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestSpreadReducesMinerRetries(t *testing.T) {
	// The paper's §7.3 claim, measured in the realistic regime: a mempool
	// backlog much larger than a block. The miner assembles three
	// 40-transaction blocks from a 360-transaction conflict-heavy backlog;
	// the adaptive spread policy (fed by the miner's retry reports) must
	// cut speculative retries versus FIFO selection. Note spreading only
	// *postpones* contention — over a full drain of a fixed finite backlog
	// the conflicts dominate the tail either way, which is why this models
	// a standing backlog instead.
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindAuction, Transactions: 360, ConflictPercent: 60, Seed: 5,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	parent := chain.GenesisHeader(types.HashString("txpool-test"))

	mineBlocks := func(policy Policy, blocks int) (retries, mined int) {
		wl.Reset()
		pool := New()
		pool.SubmitAll(wl.Calls)
		for b := 0; b < blocks; b++ {
			calls, err := pool.Select(policy, 40)
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World, parent, calls,
				miner.Config{Workers: 3})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			// Conflict feedback: the adaptive cap only engages for
			// functions the miner observed retrying.
			var conflicted []contract.Call
			for _, id := range res.Stats.RetriedTxs {
				conflicted = append(conflicted, calls[id])
			}
			pool.ReportConflicts(conflicted)
			retries += res.Stats.Retries
			mined += len(calls)
		}
		return retries, mined
	}

	fifoRetries, fifoMined := mineBlocks(PolicyFIFO, 3)
	spreadRetries, spreadMined := mineBlocks(PolicySpread, 3)
	if fifoMined != 120 || spreadMined != 120 {
		t.Fatalf("mined %d/%d, want 120 each", fifoMined, spreadMined)
	}
	if spreadRetries >= fifoRetries {
		t.Fatalf("adaptive spread should cut retries: spread=%d fifo=%d", spreadRetries, fifoRetries)
	}
	t.Logf("retries over 3 blocks: fifo=%d spread=%d", fifoRetries, spreadRetries)
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFIFO.String() == "" || PolicySpread.String() == "" || Policy(9).String() == "" {
		t.Fatal("empty policy string")
	}
}

// TestSubmitAllAtomic submits batches concurrently with FIFO drains and
// checks every drained batch is contiguous: because SubmitAll holds the
// lock across the whole batch, no other submitter's calls can interleave
// inside it.
func TestSubmitAllAtomic(t *testing.T) {
	const (
		submitters = 8
		batches    = 20
		batchLen   = 16
	)
	pool := New()
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]contract.Call, batchLen)
				for i := range batch {
					// Sender encodes (submitter, batch); the batch's calls
					// must come out adjacent in the drained stream.
					batch[i] = call(uint64(s)<<32|uint64(b), uint64(i), "f")
				}
				pool.SubmitAll(batch)
			}
		}(s)
	}
	wg.Wait()
	total := submitters * batches * batchLen
	if pool.Len() != total {
		t.Fatalf("pool holds %d, want %d", pool.Len(), total)
	}
	var drained []contract.Call
	for pool.Len() > 0 {
		calls, err := pool.Select(PolicyFIFO, 64)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		drained = append(drained, calls...)
	}
	for i := 0; i < len(drained); i += batchLen {
		owner := drained[i].Sender
		for j := 1; j < batchLen; j++ {
			if drained[i+j].Sender != owner {
				t.Fatalf("batch starting at %d interleaved: %s then %s", i, owner, drained[i+j].Sender)
			}
		}
	}
}

// TestConflictScoreStaysBounded feeds sustained conflict reports with
// ever-new (contract, function) pairs and checks the score map neither
// grows past its cap nor keeps stale entries alive forever.
func TestConflictScoreStaysBounded(t *testing.T) {
	pool := New()
	for round := 0; round < 200; round++ {
		batch := make([]contract.Call, 50)
		for i := range batch {
			batch[i] = call(1, uint64(round*1000+i), "hot")
		}
		pool.ReportConflicts(batch)
		if n := pool.conflictEntries(); n > maxConflictEntries {
			t.Fatalf("round %d: %d conflict entries, cap %d", round, n, maxConflictEntries)
		}
	}
	if n := pool.conflictEntries(); n == 0 || n > maxConflictEntries {
		t.Fatalf("final conflict entries = %d, want (0, %d]", n, maxConflictEntries)
	}
	// Decay drains a score that stops being reported: a single entry
	// reported once disappears after enough unrelated traffic.
	fresh := New()
	fresh.ReportConflicts([]contract.Call{call(7, 7, "once")})
	for i := 0; i < conflictDecayEvery; i++ {
		fresh.ReportConflicts([]contract.Call{call(8, 8, "noise")})
	}
	fresh.mu.Lock()
	_, alive := fresh.conflictScore[funcHint{contract: types.AddressFromUint64(7), function: "once"}]
	fresh.mu.Unlock()
	if alive {
		t.Fatal("stale conflict score survived decay")
	}
}

// TestRequeuePreservesOrderAtFront checks a failed mining attempt's calls
// go back to the queue head in their original relative order, ahead of
// anything submitted meanwhile.
func TestRequeuePreservesOrderAtFront(t *testing.T) {
	pool := New()
	for i := uint64(0); i < 6; i++ {
		pool.Submit(call(i, 1, "f"))
	}
	selected, err := pool.Select(PolicyFIFO, 4)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	pool.Submit(call(100, 1, "f")) // arrives while the block executes
	pool.Requeue(selected)         // ...and the mining attempt fails
	if pool.Len() != 7 {
		t.Fatalf("pool len = %d, want 7", pool.Len())
	}
	drained, err := pool.Select(PolicyFIFO, 7)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	wantSenders := []uint64{0, 1, 2, 3, 4, 5, 100}
	for i, want := range wantSenders {
		if drained[i].Sender != types.AddressFromUint64(want) {
			t.Fatalf("position %d: got %s, want sender %d", i, drained[i].Sender, want)
		}
	}
	pool.Requeue(nil) // no-op
	if pool.Len() != 0 {
		t.Fatalf("empty requeue changed len to %d", pool.Len())
	}
}
