package txpool

import (
	"errors"
	"sync"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func call(sender, target uint64, fn string) contract.Call {
	return contract.Call{
		Sender:   types.AddressFromUint64(sender),
		Contract: types.AddressFromUint64(target),
		Function: fn,
		GasLimit: 100_000,
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	p := New()
	for i := uint64(0); i < 5; i++ {
		p.Submit(call(i, 100, "f"))
	}
	got, err := p.Select(PolicyFIFO, 3)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	for i, c := range got {
		if c.Sender != types.AddressFromUint64(uint64(i)) {
			t.Fatalf("order broken at %d: %v", i, c.Sender)
		}
	}
	if p.Len() != 2 {
		t.Fatalf("remaining = %d", p.Len())
	}
}

func TestSelectEmpty(t *testing.T) {
	p := New()
	if _, err := p.Select(PolicyFIFO, 10); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := p.Select(PolicyFIFO, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestSelectFewerThanBlockSize(t *testing.T) {
	p := New()
	p.Submit(call(1, 100, "f"))
	got, err := p.Select(PolicyFIFO, 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	if p.Len() != 0 {
		t.Fatal("pool not drained")
	}
}

func TestSpreadDefersCollidingSenders(t *testing.T) {
	p := New()
	// Ten submissions from ONE sender plus five distinct senders.
	for i := 0; i < 10; i++ {
		p.Submit(call(7, 100, "vote"))
	}
	for i := uint64(20); i < 25; i++ {
		p.Submit(call(i, 100, "vote"))
	}
	got, err := p.Select(PolicySpread, 6)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("selected %d", len(got))
	}
	// At most one call from the hot sender in this block.
	hot := 0
	for _, c := range got {
		if c.Sender == types.AddressFromUint64(7) {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("hot sender appears %d times, want 1", hot)
	}
	// Nothing lost: the deferred ones are still queued.
	if p.Len() != 15-6 {
		t.Fatalf("remaining = %d, want 9", p.Len())
	}
}

func TestSpreadFallsBackWhenAllCollide(t *testing.T) {
	p := New()
	for i := 0; i < 8; i++ {
		p.Submit(call(7, 100, "vote"))
	}
	got, err := p.Select(PolicySpread, 4)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("all-colliding pool must still fill the block: got %d", len(got))
	}
}

func TestSpreadDrainsEverythingAcrossBlocks(t *testing.T) {
	p := New()
	for i := 0; i < 30; i++ {
		p.Submit(call(uint64(i%3), 100, "f")) // 3 hot senders
	}
	total := 0
	for p.Len() > 0 {
		got, err := p.Select(PolicySpread, 5)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if len(got) == 0 {
			t.Fatal("empty block with work queued")
		}
		total += len(got)
	}
	if total != 30 {
		t.Fatalf("drained %d, want 30", total)
	}
}

func TestConcurrentSubmit(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Submit(call(uint64(g*1000+i), 100, "f"))
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 400 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestSpreadReducesMinerRetries(t *testing.T) {
	// The paper's §7.3 claim, measured in the realistic regime: a mempool
	// backlog much larger than a block. The miner assembles three
	// 40-transaction blocks from a 360-transaction conflict-heavy backlog;
	// the adaptive spread policy (fed by the miner's retry reports) must
	// cut speculative retries versus FIFO selection. Note spreading only
	// *postpones* contention — over a full drain of a fixed finite backlog
	// the conflicts dominate the tail either way, which is why this models
	// a standing backlog instead.
	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindAuction, Transactions: 360, ConflictPercent: 60, Seed: 5,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	parent := chain.GenesisHeader(types.HashString("txpool-test"))

	mineBlocks := func(policy Policy, blocks int) (retries, mined int) {
		wl.Reset()
		pool := New()
		pool.SubmitAll(wl.Calls)
		for b := 0; b < blocks; b++ {
			calls, err := pool.Select(policy, 40)
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World, parent, calls,
				miner.Config{Workers: 3})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			// Conflict feedback: the adaptive cap only engages for
			// functions the miner observed retrying.
			var conflicted []contract.Call
			for _, id := range res.Stats.RetriedTxs {
				conflicted = append(conflicted, calls[id])
			}
			pool.ReportConflicts(conflicted)
			retries += res.Stats.Retries
			mined += len(calls)
		}
		return retries, mined
	}

	fifoRetries, fifoMined := mineBlocks(PolicyFIFO, 3)
	spreadRetries, spreadMined := mineBlocks(PolicySpread, 3)
	if fifoMined != 120 || spreadMined != 120 {
		t.Fatalf("mined %d/%d, want 120 each", fifoMined, spreadMined)
	}
	if spreadRetries >= fifoRetries {
		t.Fatalf("adaptive spread should cut retries: spread=%d fifo=%d", spreadRetries, fifoRetries)
	}
	t.Logf("retries over 3 blocks: fifo=%d spread=%d", fifoRetries, spreadRetries)
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFIFO.String() == "" || PolicySpread.String() == "" || Policy(9).String() == "" {
		t.Fatal("empty policy string")
	}
}
