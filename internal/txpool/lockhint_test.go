package txpool

import (
	"errors"
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

// TestPipelineRequeueBatchOrdering is the pipeline-abort regression test:
// when several in-flight selections are aborted, RequeueBatch must restore
// every call to its original arrival position — regardless of the order
// the aborts land in, and without letting calls submitted after a
// selection slip ahead of it.
func TestPipelineRequeueBatchOrdering(t *testing.T) {
	pool := New()
	for i := uint64(0); i < 4; i++ { // a0..a3
		pool.Submit(call(i, 1, "f"))
	}
	selA, err := pool.SelectBatch(PolicyFIFO, 4)
	if err != nil {
		t.Fatalf("select A: %v", err)
	}
	pool.Submit(call(50, 1, "f")) // x arrives while block A executes
	pool.Submit(call(51, 1, "f")) // y
	selB, err := pool.SelectBatch(PolicyFIFO, 2) // block B takes x, y
	if err != nil {
		t.Fatalf("select B: %v", err)
	}
	pool.Submit(call(60, 1, "f")) // z arrives while both are in flight

	// The pipeline aborts: block B's requeue lands BEFORE block A's (the
	// interleaving legacy Requeue got wrong — it would leave B ahead of A).
	pool.RequeueBatch(selB)
	pool.RequeueBatch(selA)

	drained, err := pool.Select(PolicyFIFO, 7)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []uint64{0, 1, 2, 3, 50, 51, 60}
	if len(drained) != len(want) {
		t.Fatalf("drained %d calls, want %d", len(drained), len(want))
	}
	for i, w := range want {
		if drained[i].Sender != types.AddressFromUint64(w) {
			t.Fatalf("position %d: got %s, want sender %d", i, drained[i].Sender, w)
		}
	}
	pool.RequeueBatch(Selection{}) // no-op
	if pool.Len() != 0 {
		t.Fatalf("empty requeue changed len to %d", pool.Len())
	}
}

// TestPipelineRequeueAfterLegacyRequeue: the legacy front-requeue and the
// seq-merging batch requeue must compose — a legacy entry jumps ahead of
// everything queued *or in flight* at requeue time (it takes sequence
// numbers below both the queue minimum and any selected batch's seqs),
// so a batch merged back afterwards lands behind it, intact — never
// interleaved through it.
func TestPipelineRequeueAfterLegacyRequeue(t *testing.T) {
	pool := New()
	for i := uint64(0); i < 3; i++ {
		pool.Submit(call(i, 1, "f"))
	}
	sel, err := pool.SelectBatch(PolicyFIFO, 2) // takes 0, 1
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	pool.Requeue([]contract.Call{call(90, 1, "f")}) // legacy: jumps the queue
	pool.RequeueBatch(sel)
	drained, err := pool.Select(PolicyFIFO, 4)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []uint64{90, 0, 1, 2}
	for i, w := range want {
		if drained[i].Sender != types.AddressFromUint64(w) {
			t.Fatalf("position %d: got %s, want sender %d", i, drained[i].Sender, w)
		}
	}
}

// TestPipelineRequeueNeverSplitsBatch: repeated legacy requeues while a
// selection is in flight must not mint sequence numbers colliding with
// the batch's — a batch merged back later stays contiguous instead of
// having legacy entries interleaved through its middle.
func TestPipelineRequeueNeverSplitsBatch(t *testing.T) {
	pool := New()
	for i := uint64(0); i < 3; i++ {
		pool.Submit(call(i, 1, "f")) // queue: 0, 1, 2
	}
	sel, err := pool.SelectBatch(PolicyFIFO, 2) // in flight: seqs 0, 1
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	pool.Requeue([]contract.Call{call(80, 1, "f")}) // would collide at seq 1 pre-fix
	pool.Requeue([]contract.Call{call(81, 1, "f")}) // ...and at seq 0
	pool.RequeueBatch(sel)
	drained, err := pool.Select(PolicyFIFO, 5)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []uint64{81, 80, 0, 1, 2} // batch contiguous, legacy jumpers ahead
	for i, w := range want {
		if drained[i].Sender != types.AddressFromUint64(w) {
			got := make([]string, len(drained))
			for j, c := range drained {
				got[j] = c.Sender.Short()
			}
			t.Fatalf("position %d: drained %v, want senders %v", i, got, want)
		}
	}
}

// hotCall builds a transfer-shaped call with an address argument.
func hotCall(sender, target, arg uint64) contract.Call {
	c := call(sender, target, "transfer")
	c.Args = []any{types.AddressFromUint64(arg), uint64(1)}
	return c
}

// TestLockHintDefersSharedHotHints: after a conflict pair sharing a
// sender hint is reported, the policy keeps two calls with that hot
// sender out of one block — while calls on unscored hints flow freely.
func TestLockHintDefersSharedHotHints(t *testing.T) {
	pool := New()
	hot := uint64(7)
	// Feedback: two calls from the hot sender conflicted in a past block.
	pool.ReportConflictPairs([][2]contract.Call{
		{hotCall(hot, 1, 100), hotCall(hot, 1, 101)},
	})

	pool.Submit(hotCall(hot, 1, 200))
	pool.Submit(hotCall(hot, 1, 201)) // same hot sender: must be deferred
	pool.Submit(hotCall(8, 1, 202))
	pool.Submit(hotCall(9, 1, 203))

	sel, err := pool.SelectBatch(PolicyLockHint, 3)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(sel.Calls) != 3 {
		t.Fatalf("selected %d, want 3", len(sel.Calls))
	}
	hotCount := 0
	for _, c := range sel.Calls {
		if c.Sender == types.AddressFromUint64(hot) {
			hotCount++
		}
	}
	if hotCount != 1 {
		t.Fatalf("block holds %d hot-sender calls, want exactly 1", hotCount)
	}
	// The deferred duplicate is still queued, not dropped.
	if pool.Len() != 1 {
		t.Fatalf("pool len = %d, want 1", pool.Len())
	}
}

// TestLockHintUnscoredHintsNeverThrottle: with no conflict feedback the
// lock-hint policy is plain FIFO — hot hints need evidence before they
// cost anyone anything.
func TestLockHintUnscoredHintsNeverThrottle(t *testing.T) {
	pool := New()
	for i := 0; i < 4; i++ {
		pool.Submit(hotCall(7, 1, uint64(200+i))) // same sender four times
	}
	sel, err := pool.SelectBatch(PolicyLockHint, 4)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(sel.Calls) != 4 {
		t.Fatalf("selected %d, want 4 (no feedback, no throttling)", len(sel.Calls))
	}
}

// TestLockHintScoreStaysBounded mirrors the conflict-score bound: a pool
// fed an unbounded stream of distinct conflict pairs holds a capped map.
func TestLockHintScoreStaysBounded(t *testing.T) {
	pool := New()
	for i := uint64(0); i < 4*maxConflictEntries; i += 2 {
		pool.ReportConflictPairs([][2]contract.Call{
			{hotCall(i, 1, i), hotCall(i, 1, i+1)},
		})
	}
	if got := pool.hintEntries(); got > maxConflictEntries {
		t.Fatalf("hint map grew to %d entries, cap is %d", got, maxConflictEntries)
	}
}

// TestLockHintSpeedsUpHotCold closes the feedback loop end to end on the
// workload the policy was built for: Zipf-skewed hot cross-traffic
// (workload.KindHotCold) mined with the speculative engine on simulated
// time. Hot transfers sharing a block serialize on each other's balance
// locks (and occasionally deadlock), stretching the block's critical
// path. After the first block's happens-before pairs are reported, the
// lock-hint policy keeps hot accounts from sharing a block, so the run's
// summed makespan drops below FIFO — and at or below the spread policy,
// whose sender-only hints cannot see that A→B and B→A collide, and whose
// blanket per-function cap throttles the cold majority into its FIFO
// fallback. Like TestSpreadReducesMinerRetries, this models a standing
// backlog (a mempool much deeper than a block): deferral only postpones
// contention, so draining a finite queue to empty pays it all back in the
// tail either way. Everything is deterministic (SimRunner, fixed seed),
// so the comparison is exact, not statistical.
func TestLockHintSpeedsUpHotCold(t *testing.T) {
	const (
		blockSize = 40
		blocks    = 4
	)
	makespan := make(map[Policy]uint64)
	retries := make(map[Policy]int)
	for _, policy := range []Policy{PolicyFIFO, PolicySpread, PolicyLockHint} {
		wl, err := workload.Generate(workload.Params{
			Kind: workload.KindHotCold, Transactions: 10 * blockSize,
			ConflictPercent: 60, Seed: 11,
		})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		pool := New()
		pool.SubmitAll(wl.Calls)
		eng := engine.MustNew(engine.KindSpeculative)
		root, err := wl.World.StateRoot()
		if err != nil {
			t.Fatalf("state root: %v", err)
		}
		parent := chain.GenesisHeader(root)
		for b := 0; b < blocks; b++ {
			sel, err := pool.SelectBatch(policy, blockSize)
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			res, err := miner.Mine(eng, runtime.NewSimRunner(), wl.World, parent, sel.Calls,
				engine.Options{Workers: 8})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			var conflicted []contract.Call
			for _, id := range res.Stats.RetriedTxs {
				conflicted = append(conflicted, sel.Calls[id])
			}
			pool.ReportConflicts(conflicted)
			if len(res.Stats.ConflictPairs) > 0 {
				pairs := make([][2]contract.Call, 0, len(res.Stats.ConflictPairs))
				for _, pr := range res.Stats.ConflictPairs {
					pairs = append(pairs, [2]contract.Call{sel.Calls[pr[0]], sel.Calls[pr[1]]})
				}
				pool.ReportConflictPairs(pairs)
			}
			makespan[policy] += res.Makespan
			retries[policy] += res.Stats.Retries
			parent = res.Block.Header
		}
	}
	t.Logf("HotCold makespan: fifo=%d spread=%d lockhint=%d (retries %d/%d/%d)",
		makespan[PolicyFIFO], makespan[PolicySpread], makespan[PolicyLockHint],
		retries[PolicyFIFO], retries[PolicySpread], retries[PolicyLockHint])
	if makespan[PolicyLockHint] >= makespan[PolicyFIFO] {
		t.Fatalf("lockhint makespan %d did not beat fifo %d",
			makespan[PolicyLockHint], makespan[PolicyFIFO])
	}
	if makespan[PolicyLockHint] > makespan[PolicySpread] {
		t.Fatalf("lockhint makespan %d lost to spread %d",
			makespan[PolicyLockHint], makespan[PolicySpread])
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"fifo", PolicyFIFO}, {"spread", PolicySpread}, {"lockhint", PolicyLockHint}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := (&Pool{}).SelectBatch(PolicyFIFO, 4); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty pool did not report ErrEmpty")
	}
}
