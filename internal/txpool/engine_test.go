package txpool

// Engine-parameterized selection: pool policies must compose with every
// execution engine — blocks assembled under either policy mine and
// validate under serial, speculative and OCC execution, and the conflict
// feedback loop (RetriedTxs → ReportConflicts) stays meaningful for the
// engines that produce it.

import (
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

func TestSelectionPoliciesUnderAllEngines(t *testing.T) {
	for _, ek := range engine.Kinds() {
		for _, policy := range []Policy{PolicyFIFO, PolicySpread} {
			ek, policy := ek, policy
			t.Run(ek.String()+"/"+policy.String(), func(t *testing.T) {
				wl, err := workload.Generate(workload.Params{
					Kind: workload.KindAuction, Transactions: 120, ConflictPercent: 50, Seed: 9,
				})
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				pool := New()
				pool.SubmitAll(wl.Calls)
				eng := engine.MustNew(ek)
				parent := chain.GenesisHeader(types.HashString("txpool-engines"))

				mined := 0
				for b := 0; b < 2; b++ {
					calls, err := pool.Select(policy, 40)
					if err != nil {
						t.Fatalf("select: %v", err)
					}
					pre := wl.World.Snapshot()
					res, err := miner.Mine(eng, runtime.NewSimRunner(), wl.World, parent, calls,
						engine.Options{Workers: 3})
					if err != nil {
						t.Fatalf("mine: %v", err)
					}
					var conflicted []contract.Call
					for _, id := range res.Stats.RetriedTxs {
						conflicted = append(conflicted, calls[id])
					}
					pool.ReportConflicts(conflicted)
					mined += len(calls)

					// The assembled block must validate from the pre-block
					// state regardless of engine or policy; validation
					// re-advances the world to the post-block state.
					wl.World.Restore(pre)
					if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, res.Block,
						validator.Config{Workers: 3}); err != nil {
						t.Fatalf("block %d rejected: %v", b, err)
					}
					parent = res.Block.Header
				}
				if mined != 80 {
					t.Fatalf("mined %d transactions, want 80", mined)
				}
			})
		}
	}
}
