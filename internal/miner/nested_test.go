package miner

import (
	"math/rand"
	"testing"

	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/storage"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

// vaultContract is a test contract for cross-contract calls under
// speculation: "depositVia" routes a token transfer through a nested call
// and records the deposit; "depositStrict" reverts the whole transaction
// when the nested transfer fails.
type vaultContract struct {
	addr     types.Address
	token    types.Address
	deposits *storage.Map
}

func (v *vaultContract) ContractAddress() types.Address { return v.addr }

func (v *vaultContract) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "depositVia":
		// Nested call: move tokens from the caller to the vault's account,
		// then record the deposit. A failed transfer is swallowed — the
		// deposit record is simply not written (CALL-style).
		amount := args[0].(uint64)
		// Inside the nested call msg.sender is the vault, so the depositor
		// must be passed explicitly (the usual transferFrom shape).
		if _, err := env.CallContract(v.token, "transferFrom", env.Msg().Sender, v.addr, amount); err != nil {
			return false
		}
		env.Do(v.deposits.AddUint(env.Ex(), storage.KeyAddr(env.Msg().Sender), amount))
		return true
	case "depositStrict":
		amount := args[0].(uint64)
		if _, err := env.CallContract(v.token, "transferFrom", env.Msg().Sender, v.addr, amount); err != nil {
			env.Throw("deposit failed: %v", err)
		}
		env.Do(v.deposits.AddUint(env.Ex(), storage.KeyAddr(env.Msg().Sender), amount))
		return true
	case "depositOf":
		n, err := v.deposits.GetUint(env.Ex(), storage.KeyAddr(args[0].(types.Address)))
		env.Do(err)
		return n
	default:
		env.Throw("vault: unknown function %q", fn)
		return nil
	}
}

// tokenForVault is a minimal token the vault calls into; sender-keyed
// balances, debit exclusive, credit commutative.
type tokenForVault struct {
	addr     types.Address
	balances *storage.Map
}

func (t *tokenForVault) ContractAddress() types.Address { return t.addr }

func (t *tokenForVault) Invoke(env *contract.Env, fn string, args []any) any {
	switch fn {
	case "transferFrom":
		// Trusted-caller variant (no allowance bookkeeping): only the
		// vault is deployed alongside this token in the tests.
		from := args[0].(types.Address)
		to := args[1].(types.Address)
		amount := args[2].(uint64)
		env.Do(t.balances.SubUint(env.Ex(), storage.KeyAddr(from), amount))
		env.Do(t.balances.AddUint(env.Ex(), storage.KeyAddr(to), amount))
		return nil
	default:
		env.Throw("token: unknown function %q", fn)
		return nil
	}
}

// buildVaultWorld deploys the vault + token and funds n depositors, the
// last `broke` of which get no balance (their nested transfers fail).
func buildVaultWorld(t *testing.T, n, broke int) (*contract.World, []contract.Call, types.Address, types.Address) {
	t.Helper()
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	tokenAddr := types.AddressFromUint64(0x700)
	vaultAddr := types.AddressFromUint64(0x701)
	balances, err := storage.NewMap(w.Store(), "vtoken/balances")
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	deposits, err := storage.NewMap(w.Store(), "vault/deposits")
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if err := w.Deploy(&tokenForVault{addr: tokenAddr, balances: balances}); err != nil {
		t.Fatalf("deploy token: %v", err)
	}
	if err := w.Deploy(&vaultContract{addr: vaultAddr, token: tokenAddr, deposits: deposits}); err != nil {
		t.Fatalf("deploy vault: %v", err)
	}

	// Fund depositors directly (this world uses its own token balances,
	// not the world ledger).
	calls := make([]contract.Call, 0, n)
	for i := 0; i < n; i++ {
		sender := types.AddressFromUint64(uint64(0x9000 + i))
		if i < n-broke {
			fundVaultBalance(t, w, balances, sender, 1000)
		}
		fn := "depositVia"
		if i%2 == 1 {
			fn = "depositStrict"
		}
		calls = append(calls, contract.Call{
			Sender: sender, Contract: vaultAddr, Function: fn,
			Args: []any{uint64(10 + i)}, GasLimit: 1_000_000,
		})
	}
	return w, calls, vaultAddr, tokenAddr
}

// fundVaultBalance seeds a balance using a serial transaction.
func fundVaultBalance(t *testing.T, w *contract.World, balances *storage.Map, a types.Address, amount uint64) {
	t.Helper()
	_, err := runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), w.Schedule())
		if err := balances.AddUint(tx, storage.KeyAddr(a), amount); err != nil {
			t.Errorf("fund: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestNestedCallsUnderParallelMining(t *testing.T) {
	const n, broke = 40, 8
	w, calls, _, _ := buildVaultWorld(t, n, broke)
	pre := w.Snapshot()

	serial, err := ExecuteSerial(runtime.NewSimRunner(), w, calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	serialRoot := serial.StateRoot

	w.Restore(pre)
	res, err := MineParallel(runtime.NewSimRunner(), w, genesis(), calls, Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if res.Block.Header.StateRoot != serialRoot {
		t.Fatal("nested-call block diverged from serial execution")
	}

	// Outcome split: depositVia from a broke sender COMMITS (false
	// result, no state change); depositStrict from a broke sender REVERTS.
	wantReverted := 0
	for i := n - broke; i < n; i++ {
		if calls[i].Function == "depositStrict" {
			wantReverted++
		}
	}
	gotReverted := 0
	for _, r := range res.Block.Receipts {
		if r.Reverted {
			gotReverted++
		}
	}
	if gotReverted != wantReverted {
		t.Fatalf("reverted = %d, want %d", gotReverted, wantReverted)
	}

	// The validator must accept the block (nested calls replay
	// deterministically, including the aborted child frames).
	w.Restore(pre)
	if _, err := validator.Validate(runtime.NewSimRunner(), w, res.Block, validator.Config{Workers: 3}); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestNestedCallsUnderOSThreads(t *testing.T) {
	const n, broke = 30, 6
	w, calls, _, _ := buildVaultWorld(t, n, broke)
	pre := w.Snapshot()
	res, err := MineParallel(runtime.NewOSRunner(nil), w, genesis(), calls, Config{Workers: 4})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	// Serializability in the discovered order.
	w.Restore(pre)
	replay, err := ExecuteSerial(runtime.NewOSRunner(nil), w, calls, res.Block.Schedule.Order)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replay.StateRoot != res.Block.Header.StateRoot {
		t.Fatal("nested-call schedule not serializable on OS threads")
	}
}

// TestRandomizedSerializabilityFuzz is the repository's broadest property
// test: across random seeds, kinds and conflict levels, every mined block
// must (a) replay serially in its published order S to the same state
// root, and (b) pass full validation.
func TestRandomizedSerializabilityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := append(workload.Kinds(), workload.KindToken)
	iterations := 25
	if testing.Short() {
		iterations = 8
	}
	for it := 0; it < iterations; it++ {
		p := workload.Params{
			Kind:            kinds[rng.Intn(len(kinds))],
			Transactions:    5 + rng.Intn(60),
			ConflictPercent: rng.Intn(101),
			Seed:            rng.Int63n(1_000_000),
		}
		wl, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("it=%d %+v: generate: %v", it, p, err)
		}
		workers := 2 + rng.Intn(3)
		res, err := MineParallel(runtime.NewSimRunner(), wl.World, genesis(), wl.Calls, Config{Workers: workers})
		if err != nil {
			t.Fatalf("it=%d %+v: mine: %v", it, p, err)
		}
		wl.Reset()
		replay, err := ExecuteSerial(runtime.NewSimRunner(), wl.World, wl.Calls, res.Block.Schedule.Order)
		if err != nil {
			t.Fatalf("it=%d %+v: replay: %v", it, p, err)
		}
		if replay.StateRoot != res.Block.Header.StateRoot {
			t.Fatalf("it=%d %+v: schedule not serializable", it, p)
		}
		wl.Reset()
		if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, res.Block, validator.Config{Workers: workers}); err != nil {
			t.Fatalf("it=%d %+v: validate: %v", it, p, err)
		}
	}
}
