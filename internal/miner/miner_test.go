package miner

import (
	"testing"

	"contractstm/internal/chain"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func genesis() chain.Header { return chain.GenesisHeader(types.HashString("test-genesis")) }

func mustGen(t *testing.T, p workload.Params) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatalf("generate %+v: %v", p, err)
	}
	return w
}

// allKindsParams enumerates representative workloads across benchmarks and
// conflict levels.
func allKindsParams(n int) []workload.Params {
	var out []workload.Params
	for _, kind := range workload.Kinds() {
		for _, conflict := range []int{0, 15, 50, 100} {
			out = append(out, workload.Params{
				Kind: kind, Transactions: n, ConflictPercent: conflict, Seed: 42,
			})
		}
	}
	return out
}

// orderInsensitive reports whether a workload's final state is the same
// under every serial order. SimpleAuction's bidPlusOne transactions are
// order-sensitive (the last bidder and the pending-returns ledger depend
// on serialization order), so blocks containing two or more of them are
// only comparable against execution in the published order S — which is
// exactly what the paper guarantees ("any sequential execution will do",
// §5; miners choose the order). Ballot and EtherDoc conflicts commute or
// deterministically revert, so they compare against block order too.
func orderInsensitive(p workload.Params) bool {
	switch p.Kind {
	case workload.KindAuction:
		return p.ConflictPercent == 0
	case workload.KindMixed:
		// Auction lane gets Transactions/3 txs; order-sensitive once that
		// lane has >= 2 contending transactions.
		lane := p.Transactions / 3
		return lane*p.ConflictPercent/100 < 2
	default:
		return true
	}
}

func TestMineParallelMatchesSerialBaseline(t *testing.T) {
	// The fundamental serializability check against the submission order,
	// for workloads whose final state is order-independent. (Every
	// workload, order-sensitive or not, is additionally checked against
	// the published order S in the next test.)
	for _, p := range allKindsParams(40) {
		p := p
		if !orderInsensitive(p) {
			continue
		}
		t.Run(p.Kind.String()+"/"+itoa(p.ConflictPercent), func(t *testing.T) {
			w := mustGen(t, p)

			serial, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			w.Reset()

			res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			if res.Block.Header.StateRoot != serial.StateRoot {
				t.Fatalf("parallel state root %s != serial %s",
					res.Block.Header.StateRoot.Short(), serial.StateRoot.Short())
			}
			// Receipts must agree too (same outcomes, same gas).
			for i := range serial.Receipts {
				sr, pr := serial.Receipts[i], res.Block.Receipts[i]
				if sr.Reverted != pr.Reverted || sr.GasUsed != pr.GasUsed {
					t.Fatalf("tx %d receipts diverge: serial %+v parallel %+v", i, sr, pr)
				}
			}
		})
	}
}

func TestMineParallelSerializableInScheduleOrder(t *testing.T) {
	// Re-executing the block serially in the published order S must
	// reproduce the mined state root exactly (§5: "equivalent to some
	// sequential execution").
	for _, p := range allKindsParams(40) {
		p := p
		t.Run(p.Kind.String()+"/"+itoa(p.ConflictPercent), func(t *testing.T) {
			w := mustGen(t, p)
			res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			w.Reset()
			serial, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, res.Block.Schedule.Order)
			if err != nil {
				t.Fatalf("serial in S order: %v", err)
			}
			if serial.StateRoot != res.Block.Header.StateRoot {
				t.Fatalf("serial-in-S state root %s != mined %s",
					serial.StateRoot.Short(), res.Block.Header.StateRoot.Short())
			}
		})
	}
}

func TestMineParallelDeterministicOnSimRunner(t *testing.T) {
	p := workload.Params{Kind: workload.KindMixed, Transactions: 45, ConflictPercent: 30, Seed: 11}
	run := func() chain.Block {
		w := mustGen(t, p)
		res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		return res.Block
	}
	b1, b2 := run(), run()
	if b1.Header.Hash() != b2.Header.Hash() {
		t.Fatal("simulated mining is not deterministic")
	}
}

func TestMineParallelScheduleIsValid(t *testing.T) {
	w := mustGen(t, workload.Params{Kind: workload.KindAuction, Transactions: 50, ConflictPercent: 60, Seed: 4})
	res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if err := chain.VerifyCommitments(res.Block); err != nil {
		t.Fatalf("commitments: %v", err)
	}
	if _, _, err := sched.ConstructValidator(len(w.Calls), res.Block.Schedule); err != nil {
		t.Fatalf("published schedule invalid: %v", err)
	}
	// bidPlusOne transactions all touch the highest-bid cell: the graph
	// must order them in a chain, so it cannot be empty.
	if res.Graph.EdgeCount() == 0 {
		t.Fatal("60% auction conflict produced no happens-before edges")
	}
}

func TestMineParallelZeroConflictHasNoExclusiveEdges(t *testing.T) {
	// A pure-vote Ballot block (commuting increments, disjoint voters)
	// must discover an edge-free schedule: full parallelism for validators.
	w := mustGen(t, workload.Params{Kind: workload.KindBallot, Transactions: 40, ConflictPercent: 0, Seed: 6})
	res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if res.Graph.EdgeCount() != 0 {
		t.Fatalf("conflict-free ballot block has %d edges: %v", res.Graph.EdgeCount(), res.Block.Schedule.Edges)
	}
}

func TestMineParallelWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5} {
		w := mustGen(t, workload.Params{Kind: workload.KindMixed, Transactions: 30, ConflictPercent: 15, Seed: 8})
		res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Committed+res.Stats.Reverted != 30 {
			t.Fatalf("workers=%d: %d outcomes", workers, res.Stats.Committed+res.Stats.Reverted)
		}
	}
}

func TestMineParallelOnOSThreads(t *testing.T) {
	// Same end state as serial, on real threads (race detector coverage).
	p := workload.Params{Kind: workload.KindMixed, Transactions: 40, ConflictPercent: 30, Seed: 13}
	w := mustGen(t, p)
	serial, err := ExecuteSerial(runtime.NewOSRunner(nil), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	w.Reset()
	res, err := MineParallel(runtime.NewOSRunner(nil), w.World, genesis(), w.Calls, Config{Workers: 4})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if res.Block.Header.StateRoot != serial.StateRoot {
		t.Fatal("OS-thread mining diverged from serial execution")
	}
	// And the discovered schedule replays serially to the same root.
	w.Reset()
	replay, err := ExecuteSerial(runtime.NewOSRunner(nil), w.World, w.Calls, res.Block.Schedule.Order)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replay.StateRoot != res.Block.Header.StateRoot {
		t.Fatal("discovered schedule is not serializable")
	}
}

func TestDeadlockProneWorkloadStillSerializable(t *testing.T) {
	// Token transfers A->B and B->A interleave exclusive debits with
	// commuting credits on the same two accounts: a classic ABBA shape.
	// The miner must resolve any deadlocks by abort-and-retry and still
	// produce a serializable block.
	w := mustGen(t, workload.Params{Kind: workload.KindToken, Transactions: 60, ConflictPercent: 50, Seed: 21})
	serial, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	w.Reset()
	res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if res.Block.Header.StateRoot != serial.StateRoot {
		t.Fatal("deadlock-prone block diverged from serial state")
	}
}

func TestExecuteSerialOrderValidation(t *testing.T) {
	w := mustGen(t, workload.Params{Kind: workload.KindBallot, Transactions: 5, ConflictPercent: 0, Seed: 1})
	if _, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, []types.TxID{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	w.Reset()
	if _, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, []types.TxID{0, 1, 2, 3, 99}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestMinerStatsAccounting(t *testing.T) {
	w := mustGen(t, workload.Params{Kind: workload.KindBallot, Transactions: 40, ConflictPercent: 100, Seed: 3})
	res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls, Config{Workers: 3})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if res.Stats.Committed != 20 || res.Stats.Reverted != 20 {
		t.Fatalf("stats = %+v, want 20 committed / 20 reverted", res.Stats)
	}
	if res.Stats.LockStats.Acquisitions == 0 {
		t.Fatal("no lock acquisitions recorded")
	}
}

func TestMineParallelLazyPolicy(t *testing.T) {
	for _, p := range allKindsParams(30) {
		p := p
		t.Run(p.Kind.String()+"/"+itoa(p.ConflictPercent), func(t *testing.T) {
			w := mustGen(t, p)
			res, err := MineParallel(runtime.NewSimRunner(), w.World, genesis(), w.Calls,
				Config{Workers: 3, Policy: stm.PolicyLazy})
			if err != nil {
				t.Fatalf("lazy mine: %v", err)
			}
			// Serializability: replaying serially in the published order S
			// must reproduce the mined state root.
			w.Reset()
			serial, err := ExecuteSerial(runtime.NewSimRunner(), w.World, w.Calls, res.Block.Schedule.Order)
			if err != nil {
				t.Fatalf("serial in S order: %v", err)
			}
			if res.Block.Header.StateRoot != serial.StateRoot {
				t.Fatal("lazy mining is not serializable in its own published order")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
