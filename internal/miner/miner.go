// Package miner implements the paper's Algorithm 1, MineInParallel: execute
// a block's transactions speculatively in parallel as atomic actions,
// resolving conflicts by blocking on abstract locks and by aborting and
// retrying deadlock victims; then derive the happens-before graph H from
// the committed lock profiles, topologically sort it into the serial order
// S, and publish (S, H, profiles) in the block for deterministic parallel
// validation.
//
// It also provides the serial baseline miner used by the paper's
// evaluation as the speedup denominator.
package miner

import (
	"fmt"
	"sync"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Config tunes a mining run.
type Config struct {
	// Workers is the thread-pool size (the paper's evaluation uses 3).
	Workers int
	// Policy selects eager (default) or lazy speculative writes.
	Policy stm.Policy
	// MaxRetries bounds abort-and-retry cycles per transaction; 0 means
	// DefaultMaxRetries. Exceeding it fails the mining run (it indicates a
	// livelock bug rather than ordinary contention).
	MaxRetries int
	// RetryBackoff is the simulated work performed before re-attempting an
	// aborted transaction, scaled linearly by attempt number.
	RetryBackoff gas.Gas
}

// DefaultMaxRetries bounds retry loops; deadlock victims release all locks
// before retrying, so progress only requires modest patience.
const DefaultMaxRetries = 1000

// DefaultRetryBackoff is the default per-attempt backoff work.
const DefaultRetryBackoff gas.Gas = 50

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Policy == 0 {
		c.Policy = stm.PolicyEager
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Stats aggregates a run's speculation behaviour.
type Stats struct {
	// Retries counts aborted speculative attempts (deadlock victims).
	Retries int
	// RetriedTxs lists the transactions that needed at least one retry;
	// transaction pools use this as conflict feedback (§7.3).
	RetriedTxs []types.TxID
	// Committed and Reverted count final transaction outcomes.
	Committed int
	Reverted  int
	// LockStats echoes the lock manager's counters.
	LockStats stm.Stats
}

// Result is a completed mining run.
type Result struct {
	// Block is the sealed block, including the published schedule.
	Block chain.Block
	// Makespan is the run's duration in the runner's time unit (virtual
	// gas-time for SimRunner, nanoseconds for OSRunner).
	Makespan uint64
	// Stats aggregates speculation counters.
	Stats Stats
	// Graph is the derived happens-before graph (diagnostics; the block
	// carries its edge list).
	Graph *sched.Graph
}

// MineParallel executes calls speculatively on cfg.Workers threads and
// seals a block on top of parent. The world must be at parent's state; on
// success it has advanced to the block's post-state.
func MineParallel(runner runtime.Runner, w *contract.World, parent chain.Header, calls []contract.Call, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n := len(calls)
	mgr := stm.NewManager(w.Schedule())

	receipts := make([]contract.Receipt, n)
	profiles := make([]stm.Profile, n)
	var stats Stats
	var statsMu sync.Mutex

	// Work distribution: a shared cursor over the block's calls. Workers
	// never block on the queue (all work is known up front), so no parking
	// protocol is needed here; blocking happens only inside abstract-lock
	// acquisition.
	var next int
	var nextMu sync.Mutex
	take := func() (int, bool) {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	var failure error
	var failureMu sync.Mutex
	setFailure := func(err error) {
		failureMu.Lock()
		defer failureMu.Unlock()
		if failure == nil {
			failure = err
		}
	}

	// Parallel pools pay dispatch latency; the single-threaded baseline
	// does not (the paper's serial miner runs in-line, not on a pool).
	pool := runner
	if cfg.Workers > 1 {
		pool = runtime.WithStartupWork(runner, w.Schedule().PoolStartup)
	}
	makespan, err := pool.Run(cfg.Workers, func(th runtime.Thread) {
		for {
			i, ok := take()
			if !ok {
				return
			}
			call := calls[i]
			id := types.TxID(i)
			attempt := 0
			for {
				tx := stm.BeginSpeculative(mgr, id, th, gas.NewMeter(call.GasLimit), cfg.Policy)
				tx.SetRetries(attempt)
				out := contract.Execute(w, tx, call)
				if out.Kind == contract.OutcomeRetry {
					attempt++
					statsMu.Lock()
					stats.Retries++
					statsMu.Unlock()
					if attempt > cfg.MaxRetries {
						setFailure(fmt.Errorf("miner: %s exceeded %d retries: %s", id, cfg.MaxRetries, out.Reason))
						return
					}
					th.Work(cfg.RetryBackoff * gas.Gas(attempt))
					continue
				}
				receipts[i] = contract.ReceiptFor(id, out)
				profiles[i] = tx.Profile()
				statsMu.Lock()
				if attempt > 0 {
					stats.RetriedTxs = append(stats.RetriedTxs, id)
				}
				if out.Kind == contract.OutcomeReverted {
					stats.Reverted++
				} else {
					stats.Committed++
				}
				statsMu.Unlock()
				break
			}
		}
	})
	if err != nil {
		return Result{}, fmt.Errorf("miner: worker pool: %w", err)
	}
	if failure != nil {
		return Result{}, failure
	}
	stats.LockStats = mgr.Stats()

	schedule, graph, err := sched.BuildSchedule(n, profiles)
	if err != nil {
		return Result{}, fmt.Errorf("miner: building schedule: %w", err)
	}
	stateRoot, err := w.StateRoot()
	if err != nil {
		return Result{}, fmt.Errorf("miner: state root: %w", err)
	}
	block := chain.Seal(parent, calls, receipts, schedule, profiles, stateRoot)
	return Result{Block: block, Makespan: makespan, Stats: stats, Graph: graph}, nil
}

// SerialResult is a serial execution's outcome.
type SerialResult struct {
	Receipts []contract.Receipt
	Makespan uint64
	// StateRoot is the post-state commitment.
	StateRoot types.Hash
}

// ExecuteSerial runs calls one at a time, in the order given by order (or
// block order when order is nil), with no locks and no speculation — the
// paper's baseline "serial miner that runs the block without
// parallelization". It is also the reference implementation used by tests
// to check that speculative mining is serializable.
func ExecuteSerial(runner runtime.Runner, w *contract.World, calls []contract.Call, order []types.TxID) (SerialResult, error) {
	idx := make([]int, 0, len(calls))
	if order == nil {
		for i := range calls {
			idx = append(idx, i)
		}
	} else {
		if len(order) != len(calls) {
			return SerialResult{}, fmt.Errorf("miner: order has %d entries for %d calls", len(order), len(calls))
		}
		for _, tx := range order {
			if int(tx) >= len(calls) {
				return SerialResult{}, fmt.Errorf("miner: order entry %s out of range", tx)
			}
			idx = append(idx, int(tx))
		}
	}
	receipts := make([]contract.Receipt, len(calls))
	makespan, err := runner.Run(1, func(th runtime.Thread) {
		for _, i := range idx {
			call := calls[i]
			id := types.TxID(i)
			tx := stm.BeginSerial(id, th, gas.NewMeter(call.GasLimit), w.Schedule())
			out := contract.Execute(w, tx, call)
			if out.Kind == contract.OutcomeRetry {
				// Serial transactions cannot conflict; a retry here is a bug.
				panic(fmt.Sprintf("miner: serial execution of %s demanded retry: %s", id, out.Reason))
			}
			receipts[i] = contract.ReceiptFor(id, out)
		}
	})
	if err != nil {
		return SerialResult{}, fmt.Errorf("miner: serial run: %w", err)
	}
	root, err := w.StateRoot()
	if err != nil {
		return SerialResult{}, fmt.Errorf("miner: state root: %w", err)
	}
	return SerialResult{Receipts: receipts, Makespan: makespan, StateRoot: root}, nil
}
