// Package miner seals blocks: it hands a block's calls to a pluggable
// execution engine (internal/engine) and packages the engine's result —
// receipts, the derived serial order S, the happens-before graph H and the
// per-transaction lock profiles — into a sealed block for publication
// (§4: "A miner includes these profiles in the blockchain along with usual
// information").
//
// The execution strategies themselves live in internal/engine: the paper's
// Algorithm 1 (speculative mining) is engine.SpeculativeEngine, the serial
// baseline is engine.SerialEngine, and the Block-STM-style optimistic
// batch strategy is engine.OCCEngine. MineParallel and ExecuteSerial
// remain as the historical entry points over those engines.
package miner

import (
	"fmt"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

// Config tunes a mining run.
type Config struct {
	// Workers is the thread-pool size (the paper's evaluation uses 3).
	Workers int
	// Policy selects eager (default) or lazy speculative writes.
	Policy stm.Policy
	// MaxRetries bounds abort-and-retry cycles per transaction; 0 means
	// DefaultMaxRetries. Exceeding it fails the mining run (it indicates a
	// livelock bug rather than ordinary contention).
	MaxRetries int
	// RetryBackoff is the simulated work performed before re-attempting an
	// aborted transaction, scaled linearly by attempt number.
	RetryBackoff gas.Gas
}

// DefaultMaxRetries bounds retry loops; deadlock victims release all locks
// before retrying, so progress only requires modest patience.
const DefaultMaxRetries = engine.DefaultMaxRetries

// DefaultRetryBackoff is the default per-attempt backoff work.
const DefaultRetryBackoff = engine.DefaultRetryBackoff

// options converts the miner config into engine options.
func (c Config) options() engine.Options {
	return engine.Options{
		Workers:      c.Workers,
		Policy:       c.Policy,
		MaxRetries:   c.MaxRetries,
		RetryBackoff: c.RetryBackoff,
	}
}

// Stats aggregates a run's execution behaviour (see engine.Stats).
type Stats = engine.Stats

// Result is a completed mining run.
type Result struct {
	// Block is the sealed block, including the published schedule.
	Block chain.Block
	// Makespan is the run's duration in the runner's time unit (virtual
	// gas-time for SimRunner, nanoseconds for OSRunner).
	Makespan uint64
	// Stats aggregates execution counters.
	Stats Stats
	// Graph is the derived happens-before graph (diagnostics; the block
	// carries its edge list).
	Graph *sched.Graph
}

// Mine executes calls with the given engine and seals a block on top of
// parent. The world must be at parent's state; on success it has advanced
// to the block's post-state.
func Mine(eng engine.Engine, runner runtime.Runner, w *contract.World, parent chain.Header, calls []contract.Call, opts engine.Options) (Result, error) {
	res, err := eng.ExecuteBlock(runner, w, calls, opts)
	if err != nil {
		return Result{}, fmt.Errorf("miner: %w", err)
	}
	stateRoot, err := w.StateRoot()
	if err != nil {
		return Result{}, fmt.Errorf("miner: state root: %w", err)
	}
	block := chain.Seal(parent, calls, res.Receipts, res.Schedule, res.Profiles, stateRoot)
	return Result{Block: block, Makespan: res.Makespan, Stats: res.Stats, Graph: res.Graph}, nil
}

// MineParallel executes calls speculatively on cfg.Workers threads and
// seals a block on top of parent — the paper's Algorithm 1 entry point.
func MineParallel(runner runtime.Runner, w *contract.World, parent chain.Header, calls []contract.Call, cfg Config) (Result, error) {
	return Mine(engine.SpeculativeEngine{}, runner, w, parent, calls, cfg.options())
}

// SerialResult is a serial execution's outcome.
type SerialResult struct {
	Receipts []contract.Receipt
	Makespan uint64
	// StateRoot is the post-state commitment.
	StateRoot types.Hash
}

// ExecuteSerial runs calls one at a time, in the order given by order (or
// block order when order is nil), with no locks and no speculation — the
// paper's baseline "serial miner that runs the block without
// parallelization". It is also the reference implementation used by tests
// to check that parallel engines are serializable.
func ExecuteSerial(runner runtime.Runner, w *contract.World, calls []contract.Call, order []types.TxID) (SerialResult, error) {
	run, err := engine.RunOrdered(runner, w, calls, order)
	if err != nil {
		return SerialResult{}, fmt.Errorf("miner: %w", err)
	}
	root, err := w.StateRoot()
	if err != nil {
		return SerialResult{}, fmt.Errorf("miner: state root: %w", err)
	}
	return SerialResult{Receipts: run.Receipts, Makespan: run.Makespan, StateRoot: root}, nil
}
