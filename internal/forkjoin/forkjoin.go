// Package forkjoin implements a work-stealing fork-join executor for task
// DAGs — the substrate the paper's validators run on ("using a
// work-stealing scheduler, the validator can exploit whatever degree of
// parallelism it has available", §4, citing Cilk).
//
// Tasks are dependency-counted rather than blocking: a task becomes ready
// when its last predecessor finishes, so no worker ever blocks holding a
// task (which would deadlock a bounded pool). Each worker owns a deque;
// it pushes newly-readied tasks to its own tail and pops from the tail
// (LIFO, cache-friendly), while idle workers steal from other workers'
// heads (FIFO, breadth-first) — the classic Cilk discipline.
//
// The executor runs on runtime.Thread workers, so the same code serves the
// deterministic virtual-time simulator and real OS threads.
package forkjoin

import (
	"errors"
	"fmt"
	"sync"

	"contractstm/internal/runtime"
)

// Task is one node of the DAG.
type Task struct {
	// Run executes the task's work on the given worker thread.
	Run func(th runtime.Thread)
	// Preds lists the task indices that must complete first.
	Preds []int
}

// ErrUnreachableTasks reports tasks whose dependencies can never be
// satisfied (a cycle or dangling predecessor), detected when the pool runs
// dry with tasks outstanding.
var ErrUnreachableTasks = errors.New("forkjoin: tasks unreachable (cyclic or dangling dependencies)")

// pool is the shared scheduling state for one Run call.
type pool struct {
	mu     sync.Mutex
	deques [][]int // per-worker deque of ready task ids
	idle   []runtime.Thread
	done   int
	total  int
	// draining is set when a worker proves the remaining tasks unreachable
	// (all other workers idle, no ready work); everyone exits.
	draining bool
	workers  int
}

// Run executes the task DAG on `workers` threads of the given runner and
// returns the makespan in the runner's time unit. Preds entries must be in
// range; duplicate predecessors are counted once.
func Run(runner runtime.Runner, workers int, tasks []Task) (uint64, error) {
	n := len(tasks)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, task := range tasks {
		seen := make(map[int]bool, len(task.Preds))
		for _, p := range task.Preds {
			if p < 0 || p >= n || p == i {
				return 0, fmt.Errorf("forkjoin: task %d has invalid predecessor %d", i, p)
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			succs[p] = append(succs[p], i)
			indeg[i]++
		}
	}

	p := &pool{
		deques:  make([][]int, workers),
		total:   n,
		workers: workers,
	}
	// Seed initially-ready tasks round-robin across workers so the start is
	// balanced and deterministic.
	next := 0
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			p.deques[next%workers] = append(p.deques[next%workers], i)
			next++
		}
	}
	if next == 0 && n > 0 {
		return 0, fmt.Errorf("%w: no source tasks", ErrUnreachableTasks)
	}

	// remaining dependency counts, decremented under p.mu.
	remaining := indeg

	makespan, err := runner.Run(workers, func(th runtime.Thread) {
		self := th.ID()
		for {
			id, ok := p.take(self, th)
			if !ok {
				return
			}
			tasks[id].Run(th)
			// Mark completion and ready any successors.
			p.mu.Lock()
			p.done++
			var woken []runtime.Thread
			for _, s := range succs[id] {
				remaining[s]--
				if remaining[s] == 0 {
					p.deques[self] = append(p.deques[self], s)
					if len(p.idle) > 0 {
						woken = append(woken, p.idle[len(p.idle)-1])
						p.idle = p.idle[:len(p.idle)-1]
					}
				}
			}
			finished := p.done == p.total
			if finished {
				woken = append(woken, p.idle...)
				p.idle = nil
			}
			p.mu.Unlock()
			for _, w := range woken {
				th.Unpark(w)
			}
		}
	})
	if err != nil {
		return 0, fmt.Errorf("forkjoin: %w", err)
	}
	if p.done != p.total {
		return 0, fmt.Errorf("%w: %d of %d tasks ran", ErrUnreachableTasks, p.done, p.total)
	}
	return makespan, nil
}

// take returns the next task for worker self: its own tail, then a steal
// from the head of another worker's deque, then park until new work or
// completion. ok=false means all tasks are done (or unreachable) and the
// worker should exit.
func (p *pool) take(self int, th runtime.Thread) (int, bool) {
	for {
		p.mu.Lock()
		// Own deque: LIFO.
		if d := p.deques[self]; len(d) > 0 {
			id := d[len(d)-1]
			p.deques[self] = d[:len(d)-1]
			p.mu.Unlock()
			return id, true
		}
		// Steal: FIFO from the first victim with work, scanning from
		// self+1 for determinism.
		for off := 1; off < p.workers; off++ {
			v := (self + off) % p.workers
			if d := p.deques[v]; len(d) > 0 {
				id := d[0]
				p.deques[v] = d[1:]
				p.mu.Unlock()
				return id, true
			}
		}
		if p.draining || p.done == p.total {
			p.mu.Unlock()
			return 0, false
		}
		// If every other worker is idle too and no work exists, the
		// remaining tasks are unreachable: drain the pool and let Run
		// report it.
		if len(p.idle) == p.workers-1 {
			p.draining = true
			idle := p.idle
			p.idle = nil
			p.mu.Unlock()
			for _, w := range idle {
				th.Unpark(w)
			}
			return 0, false
		}
		p.idle = append(p.idle, th)
		p.mu.Unlock()
		th.Park()
	}
}
