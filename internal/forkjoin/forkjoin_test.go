package forkjoin

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"contractstm/internal/gas"
	"contractstm/internal/runtime"
)

// chainTasks builds a linear chain 0 -> 1 -> ... -> n-1, each recording its
// completion order.
func chainTasks(n int, order *[]int, mu *sync.Mutex) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		var preds []int
		if i > 0 {
			preds = []int{i - 1}
		}
		tasks[i] = Task{
			Preds: preds,
			Run: func(th runtime.Thread) {
				th.Work(10)
				mu.Lock()
				*order = append(*order, i)
				mu.Unlock()
			},
		}
	}
	return tasks
}

func TestChainExecutesInOrder(t *testing.T) {
	var order []int
	var mu sync.Mutex
	ms, err := Run(runtime.NewSimRunner(), 3, chainTasks(10, &order, &mu))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 10 {
		t.Fatalf("ran %d tasks, want 10", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want strict sequence", order)
		}
	}
	// A chain has no parallelism: makespan == sum of work.
	if ms < 100 {
		t.Fatalf("makespan %d < 100: chain overlapped?!", ms)
	}
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	tasks := make([]Task, 9)
	for i := range tasks {
		tasks[i] = Task{Run: func(th runtime.Thread) { th.Work(100) }}
	}
	ms, err := Run(runtime.NewSimRunner(), 3, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 9 tasks x 100 on 3 workers: perfect packing = 300.
	if ms != 300 {
		t.Fatalf("makespan = %d, want 300 (perfect 3-way packing)", ms)
	}
}

func TestDiamondDependencies(t *testing.T) {
	// 0 -> {1, 2} -> 3.
	var mu sync.Mutex
	pos := map[int]int{}
	next := 0
	record := func(i int) func(runtime.Thread) {
		return func(th runtime.Thread) {
			th.Work(10)
			mu.Lock()
			pos[i] = next
			next++
			mu.Unlock()
		}
	}
	tasks := []Task{
		{Run: record(0)},
		{Preds: []int{0}, Run: record(1)},
		{Preds: []int{0}, Run: record(2)},
		{Preds: []int{1, 2}, Run: record(3)},
	}
	if _, err := Run(runtime.NewSimRunner(), 2, tasks); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pos[0] != 0 || pos[3] != 3 {
		t.Fatalf("positions = %v: 0 must be first, 3 last", pos)
	}
}

func TestRespectsEveryEdgeUnderLoad(t *testing.T) {
	// Random DAG; verify every edge's ordering at completion.
	rng := rand.New(rand.NewSource(42))
	n := 60
	var mu sync.Mutex
	finished := make([]int, 0, n)
	position := make([]int, n)
	tasks := make([]Task, n)
	var edges [][2]int
	for i := 0; i < n; i++ {
		i := i
		var preds []int
		for j := 0; j < i; j++ {
			if rng.Intn(8) == 0 {
				preds = append(preds, j)
				edges = append(edges, [2]int{j, i})
			}
		}
		tasks[i] = Task{Preds: preds, Run: func(th runtime.Thread) {
			th.Work(gas.Gas(1 + rng.Intn(3)))
			mu.Lock()
			position[i] = len(finished)
			finished = append(finished, i)
			mu.Unlock()
		}}
	}
	if _, err := Run(runtime.NewSimRunner(), 3, tasks); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(finished) != n {
		t.Fatalf("finished %d of %d", len(finished), n)
	}
	for _, e := range edges {
		if position[e[0]] >= position[e[1]] {
			t.Fatalf("edge %d->%d violated: positions %d >= %d", e[0], e[1], position[e[0]], position[e[1]])
		}
	}
}

func TestRunOnOSThreads(t *testing.T) {
	var count int
	var mu sync.Mutex
	tasks := make([]Task, 20)
	for i := range tasks {
		var preds []int
		if i >= 2 {
			preds = []int{i - 2}
		}
		tasks[i] = Task{Preds: preds, Run: func(th runtime.Thread) {
			mu.Lock()
			count++
			mu.Unlock()
		}}
	}
	if _, err := Run(runtime.NewOSRunner(nil), 4, tasks); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 20 {
		t.Fatalf("count = %d, want 20", count)
	}
}

func TestInvalidPredecessorRejected(t *testing.T) {
	tasks := []Task{{Preds: []int{5}, Run: func(runtime.Thread) {}}}
	if _, err := Run(runtime.NewSimRunner(), 2, tasks); err == nil {
		t.Fatal("out-of-range predecessor accepted")
	}
	tasks = []Task{{Preds: []int{0}, Run: func(runtime.Thread) {}}}
	if _, err := Run(runtime.NewSimRunner(), 2, tasks); err == nil {
		t.Fatal("self-predecessor accepted")
	}
}

func TestCyclicTasksReported(t *testing.T) {
	// 0 and 1 depend on each other via 2: 1 <- 2 <- 1 is rejected by the
	// self-check, so build a 2-cycle across distinct tasks: 1->2, 2->1.
	tasks := []Task{
		{Run: func(runtime.Thread) {}},
		{Preds: []int{2}, Run: func(runtime.Thread) {}},
		{Preds: []int{1}, Run: func(runtime.Thread) {}},
	}
	_, err := Run(runtime.NewSimRunner(), 2, tasks)
	if !errors.Is(err, ErrUnreachableTasks) {
		t.Fatalf("err = %v, want ErrUnreachableTasks", err)
	}
}

func TestAllTasksCyclicNoSources(t *testing.T) {
	tasks := []Task{
		{Preds: []int{1}, Run: func(runtime.Thread) {}},
		{Preds: []int{0}, Run: func(runtime.Thread) {}},
	}
	if _, err := Run(runtime.NewSimRunner(), 2, tasks); !errors.Is(err, ErrUnreachableTasks) {
		t.Fatalf("err = %v, want ErrUnreachableTasks", err)
	}
}

func TestEmptyTaskList(t *testing.T) {
	ms, err := Run(runtime.NewSimRunner(), 2, nil)
	if err != nil {
		t.Fatalf("Run(empty): %v", err)
	}
	if ms != 0 {
		t.Fatalf("makespan = %d, want 0", ms)
	}
}

func TestDuplicatePredsCountedOnce(t *testing.T) {
	ran := false
	tasks := []Task{
		{Run: func(runtime.Thread) {}},
		{Preds: []int{0, 0, 0}, Run: func(runtime.Thread) { ran = true }},
	}
	if _, err := Run(runtime.NewSimRunner(), 1, tasks); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("task with duplicate preds never became ready")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	build := func() []Task {
		rng := rand.New(rand.NewSource(7))
		tasks := make([]Task, 40)
		for i := range tasks {
			var preds []int
			for j := 0; j < i; j++ {
				if rng.Intn(10) == 0 {
					preds = append(preds, j)
				}
			}
			cost := gas.Gas(1 + rng.Intn(20))
			tasks[i] = Task{Preds: preds, Run: func(th runtime.Thread) { th.Work(cost) }}
		}
		return tasks
	}
	ms1, err := Run(runtime.NewSimRunner(), 3, build())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ms2, _ := Run(runtime.NewSimRunner(), 3, build())
	if ms1 != ms2 {
		t.Fatalf("nondeterministic makespans: %d vs %d", ms1, ms2)
	}
}

// Property: random DAGs with forward edges always complete all tasks, and
// more workers never increase the simulated makespan.
func TestMoreWorkersNeverSlower(t *testing.T) {
	propFn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		build := func() []Task {
			r2 := rand.New(rand.NewSource(seed))
			tasks := make([]Task, n)
			for i := range tasks {
				var preds []int
				for j := 0; j < i; j++ {
					if r2.Intn(6) == 0 {
						preds = append(preds, j)
					}
				}
				cost := gas.Gas(1 + r2.Intn(10))
				tasks[i] = Task{Preds: preds, Run: func(th runtime.Thread) { th.Work(cost) }}
			}
			return tasks
		}
		ms1, err1 := Run(runtime.NewSimRunner(), 1, build())
		ms3, err3 := Run(runtime.NewSimRunner(), 3, build())
		if err1 != nil || err3 != nil {
			return false
		}
		return ms3 <= ms1
	}
	if err := quick.Check(propFn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
