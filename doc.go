// Package contractstm is a from-scratch Go reproduction of "Adding
// Concurrency to Smart Contracts" (Dickerson, Gazzillo, Herlihy, Koskinen —
// PODC 2017): speculative parallel smart-contract mining via transactional
// boosting, and deterministic parallel validation via published fork-join
// schedules.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the paper-vs-measured evaluation, and
// examples/ for runnable entry points. The root package carries the
// repository-level benchmarks (bench_test.go), one per table and figure of
// the paper.
package contractstm
