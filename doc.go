// Package contractstm is a from-scratch Go reproduction of "Adding
// Concurrency to Smart Contracts" (Dickerson, Gazzillo, Herlihy, Koskinen —
// PODC 2017): speculative parallel smart-contract mining via transactional
// boosting, and deterministic parallel validation via published fork-join
// schedules.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the paper-vs-measured evaluation, and
// examples/ for runnable entry points. The root package carries the
// repository-level benchmarks (bench_test.go), one per table and figure of
// the paper.
//
// Layers, bottom up: types/crypto/gas (primitives and the cost model),
// codec (the flat binary wire format: stream headers, append/read
// primitives, pooled encode buffers), des/runtime (deterministic simulated
// time), stm/storage (abstract locks
// and boosted objects), contract/contracts (execution environment and the
// paper's benchmark contracts), sched/forkjoin (published schedules and
// their deterministic replay), engine (pluggable block execution: serial,
// speculative, OCC), miner/validator (seal and check blocks), chain (hash-
// linked blocks and their flat wire encoding, with a gob read-compatibility
// fallback), txpool (mempool and selection
// policies, including engine-feedback lock-hints), persist (block WAL,
// group-commit writer, state snapshots, crash recovery), pipeline (the
// staged block-production window: sealed vs durable, back-pressure,
// abort), node (the assembled node), api (the versioned /v1 client API:
// typed wire schema, durable transaction receipts, SSE event streams,
// server middleware, with api/wire the schema and api/client the Go
// SDK — see docs/API.md), importer (the staged catch-up import
// pipeline: windowed range prefetch, parallel stateless validation,
// strictly height-ordered commit with deterministic error election),
// cluster (multi-node propagation over the SDK,
// durable-ordered publish, catch-up sync — serial or staged through
// importer — and snapshot fast-sync), replica (read replicas: the SSE
// relay that re-fans one upstream subscription out to local
// subscribers, bounded-staleness read gating, and the historical state
// materializer behind GET /v1/state?height=H),
// workload/stats/bench (the evaluation harness), analysis (the chainvet
// static-analysis suite that machine-checks the determinism, locking,
// pooling and codec invariants above; cmd/chainvet runs it standalone
// or as a go vet tool — see docs/LINTS.md).
package contractstm
