// Quickstart: the smallest end-to-end tour of the library.
//
// It deploys a Token contract, submits a block of transfers, mines it
// speculatively in parallel (discovering a serializable schedule), then
// validates the block deterministically with the fork-join validator —
// the two halves of the paper's contribution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A world holds all contract state (boosted storage objects).
	world, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return err
	}

	// 2. Deploy a token and fund ten holders at genesis.
	var (
		tokenAddr = types.AddressFromUint64(0x70C3)
		issuer    = types.AddressFromUint64(1)
	)
	token, err := contracts.NewToken(world, tokenAddr, issuer, 1_000_000)
	if err != nil {
		return err
	}
	holders := make([]types.Address, 10)
	for i := range holders {
		holders[i] = types.AddressFromUint64(uint64(100 + i))
		if err := token.SeedBalance(world, holders[i], 1000); err != nil {
			return err
		}
	}

	// 3. Build a block: each holder pays the next one; the last transfer
	//    intentionally overdraws and will revert.
	var calls []contract.Call
	for i, from := range holders {
		to := holders[(i+1)%len(holders)]
		calls = append(calls, contract.Call{
			Sender: from, Contract: tokenAddr, Function: "transfer",
			Args: []any{to, uint64(50 + i)}, GasLimit: 100_000,
		})
	}
	calls = append(calls, contract.Call{
		Sender: holders[0], Contract: tokenAddr, Function: "transfer",
		Args: []any{holders[1], uint64(999_999)}, GasLimit: 100_000,
	})

	// 4. Mine the block speculatively on three workers. The simulated
	//    runner gives deterministic virtual-time measurements; swap in
	//    runtime.NewOSRunner(nil) for real threads.
	parent := chain.GenesisHeader(types.HashString("quickstart"))
	pre := world.Snapshot() // validators start from the parent state
	res, err := miner.MineParallel(runtime.NewSimRunner(), world, parent, calls, miner.Config{Workers: 3})
	if err != nil {
		return err
	}
	fmt.Printf("mined block: %d committed, %d reverted, %d retries\n",
		res.Stats.Committed, res.Stats.Reverted, res.Stats.Retries)
	fmt.Printf("discovered schedule: %d happens-before edges, serial order %v\n",
		len(res.Block.Schedule.Edges), res.Block.Schedule.Order)

	// 5. Validate the block deterministically, in parallel, from the
	//    parent state. Any tampering with state, receipts or the schedule
	//    would be rejected.
	world.Restore(pre)
	vres, err := validator.Validate(runtime.NewSimRunner(), world, res.Block, validator.Config{Workers: 3})
	if err != nil {
		return err
	}
	fmt.Printf("validated block in %d virtual time units (miner took %d)\n",
		vres.Makespan, res.Makespan)

	for i, r := range res.Block.Receipts {
		status := "ok"
		if r.Reverted {
			status = "REVERTED: " + r.Reason
		}
		fmt.Printf("  tx%-2d gas=%-6d %s\n", i, r.GasUsed, status)
	}
	fmt.Printf("block hash %s, state root %s\n",
		res.Block.Header.Hash().Short(), res.Block.Header.StateRoot.Short())
	return nil
}
