// EtherDoc example: the paper's proof-of-existence DAPP. A publisher
// notarizes documents, auditors check them in parallel, and a batch of
// ownership transfers to one archive account shows the contention pattern
// the paper's EtherDoc benchmark measures ("all contending transactions
// touch the same shared data").
//
// Run with:
//
//	go run ./examples/etherdoc
package main

import (
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/stm"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etherdoc:", err)
		os.Exit(1)
	}
}

func run() error {
	world, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return err
	}
	var (
		docAddr   = types.AddressFromUint64(0xD0C5)
		archive   = types.AddressFromUint64(0xA2C4)
		publisher = types.AddressFromUint64(0xF0B1)
	)
	etherdoc, err := contracts.NewEtherDoc(world, docAddr)
	if err != nil {
		return err
	}

	docs := make([]types.Hash, 16)
	for i := range docs {
		docs[i] = types.HashString(fmt.Sprintf("whitepaper-rev-%d.pdf", i))
	}

	parent := chain.GenesisHeader(types.HashString("etherdoc-example"))
	_ = parent
	ledger := chain.New(mustRoot(world))
	mineAndValidate := func(name string, calls []contract.Call) error {
		pre := world.Snapshot()
		res, err := miner.MineParallel(runtime.NewSimRunner(), world, ledger.Head().Header, calls,
			miner.Config{Workers: 3})
		if err != nil {
			return fmt.Errorf("mine %s: %w", name, err)
		}
		metrics, err := sched.Metrics(res.Graph)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %2d txs, %d reverted, edges=%2d critical-path=%2d\n",
			name, len(calls), res.Stats.Reverted, metrics.Edges, metrics.CriticalPathLen)
		world.Restore(pre)
		if _, err := validator.Validate(runtime.NewSimRunner(), world, res.Block, validator.Config{Workers: 3}); err != nil {
			return fmt.Errorf("validate %s: %w", name, err)
		}
		return ledger.Append(res.Block)
	}

	// Block 1: the publisher notarizes all documents. Distinct hashcodes,
	// but every creation bumps the publisher's own document count
	// (read-modify-write) — watch the schedule chain.
	var creations []contract.Call
	for _, d := range docs {
		creations = append(creations, contract.Call{
			Sender: publisher, Contract: docAddr, Function: "createDocument",
			Args: []any{d}, GasLimit: 100_000,
		})
	}
	if err := mineAndValidate("block 1 (notarize)  ", creations); err != nil {
		return err
	}

	// Block 2: auditors verify existence in parallel — pure reads on
	// distinct documents, an edge-free schedule.
	var audits []contract.Call
	for i, d := range docs {
		audits = append(audits, contract.Call{
			Sender: types.AddressFromUint64(uint64(0xAAA0 + i)), Contract: docAddr,
			Function: "documentExists", Args: []any{d}, GasLimit: 100_000,
		})
	}
	if err := mineAndValidate("block 2 (audit)     ", audits); err != nil {
		return err
	}

	// Block 3: the publisher transfers everything to the archive — the
	// paper's conflict workload: all transfers contend on the archive's
	// document count.
	var transfers []contract.Call
	for _, d := range docs {
		transfers = append(transfers, contract.Call{
			Sender: publisher, Contract: docAddr, Function: "transferOwnership",
			Args: []any{d, archive}, GasLimit: 100_000,
		})
	}
	if err := mineAndValidate("block 3 (archive)   ", transfers); err != nil {
		return err
	}

	// Inspect final ownership through a serial read.
	_, err = runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), world.Schedule())
		out := contract.Execute(world, tx, contract.Call{
			Sender: publisher, Contract: docAddr, Function: "countForOwner",
			Args: []any{archive}, GasLimit: 1_000_000,
		})
		if out.Kind == contract.OutcomeCommitted {
			fmt.Printf("\narchive now owns %v documents; chain height %d, head %s\n",
				out.Result, ledger.Length()-1, ledger.Head().Header.Hash().Short())
		}
	})
	if err != nil {
		return err
	}
	_ = etherdoc
	return nil
}

func mustRoot(w *contract.World) types.Hash {
	root, err := w.StateRoot()
	if err != nil {
		panic(err)
	}
	return root
}
