// Auction example: the paper's SimpleAuction contract across an auction's
// whole lifecycle, mined over three blocks:
//
//	block 1 — a burst of competing bids (bidPlusOne: every transaction
//	          reads and raises the shared highest bid, so the miner
//	          discovers a serialization chain);
//	block 2 — outbid bidders withdraw their stakes (disjoint map keys:
//	          near-perfect parallelism);
//	block 3 — the beneficiary ends the auction.
//
// The contrast between block 1's and block 2's schedules is the paper's
// §7 story in miniature.
//
// Run with:
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/types"
	"contractstm/internal/validator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "auction:", err)
		os.Exit(1)
	}
}

func run() error {
	world, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return err
	}
	var (
		auctionAddr = types.AddressFromUint64(0xA0C7)
		beneficiary = types.AddressFromUint64(0xBE3F)
	)
	auction, err := contracts.NewSimpleAuction(world, auctionAddr, beneficiary)
	if err != nil {
		return err
	}
	if err := auction.SeedBid(world, types.AddressFromUint64(0x5EED), 10); err != nil {
		return err
	}

	bidders := make([]types.Address, 12)
	for i := range bidders {
		bidders[i] = types.AddressFromUint64(uint64(0xB1D0 + i))
	}
	ledger := chain.New(mustRoot(world))
	mine := func(name string, calls []contract.Call) (chain.Block, error) {
		pre := world.Snapshot()
		res, err := miner.MineParallel(runtime.NewSimRunner(), world, ledger.Head().Header, calls,
			miner.Config{Workers: 3})
		if err != nil {
			return chain.Block{}, fmt.Errorf("mine %s: %w", name, err)
		}
		metrics, err := sched.Metrics(res.Graph)
		if err != nil {
			return chain.Block{}, err
		}
		fmt.Printf("%s: %2d txs, %2d reverted, schedule edges=%2d critical-path=%2d max-width=%.1f\n",
			name, len(calls), res.Stats.Reverted, metrics.Edges, metrics.CriticalPathLen, metrics.MaxWidth)

		// Every block is validated before appending, like a real network.
		world.Restore(pre)
		if _, err := validator.Validate(runtime.NewSimRunner(), world, res.Block, validator.Config{Workers: 3}); err != nil {
			return chain.Block{}, fmt.Errorf("validate %s: %w", name, err)
		}
		if err := ledger.Append(res.Block); err != nil {
			return chain.Block{}, fmt.Errorf("append %s: %w", name, err)
		}
		return res.Block, nil
	}

	// Block 1: a bidding war. Each bidPlusOne reads the highest bid and
	// raises it by one — inherently sequential, and the schedule shows it.
	var bids []contract.Call
	for _, b := range bidders {
		bids = append(bids, contract.Call{
			Sender: b, Contract: auctionAddr, Function: "bidPlusOne", GasLimit: 100_000,
		})
	}
	if _, err := mine("block 1 (bidding war)   ", bids); err != nil {
		return err
	}

	// Block 2: everyone who was outbid withdraws — disjoint keys, wide
	// schedule.
	var withdrawals []contract.Call
	for _, b := range bidders {
		withdrawals = append(withdrawals, contract.Call{
			Sender: b, Contract: auctionAddr, Function: "withdraw", GasLimit: 100_000,
		})
	}
	if _, err := mine("block 2 (withdrawals)   ", withdrawals); err != nil {
		return err
	}

	// Block 3: the beneficiary closes the auction while a late bid races
	// it. Both orders are serializable; the miner publishes whichever it
	// discovered (an edge orders the pair), and validators replay exactly
	// that order — if the bid serialized after the close it reverts, if
	// before it stands.
	closing := []contract.Call{
		{Sender: beneficiary, Contract: auctionAddr, Function: "auctionEnd", GasLimit: 100_000},
		{Sender: bidders[0], Contract: auctionAddr, Function: "bid", Args: []any{uint64(10_000)}, GasLimit: 100_000},
	}
	if _, err := mine("block 3 (auction close) ", closing); err != nil {
		return err
	}

	fmt.Printf("\nchain height %d, head %s\n", ledger.Length()-1, ledger.Head().Header.Hash().Short())
	return nil
}

func mustRoot(w *contract.World) types.Hash {
	root, err := w.StateRoot()
	if err != nil {
		panic(err)
	}
	return root
}
