// Ballot example: the paper's flagship contract (Listing 1 / Appendix A),
// exercised the way its benchmark does — a registered electorate votes in
// one block — plus the delegation machinery the full Solidity contract
// provides.
//
// The point to notice in the output: although every vote increments the
// same proposal's count, the discovered schedule has NO happens-before
// edges between plain votes — boosted increments commute — while
// double-votes create real conflicts that serialize only the contending
// pair. Compare with the serial baseline time.
//
// Run with:
//
//	go run ./examples/ballot
package main

import (
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/gas"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/stm"
	"contractstm/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ballot:", err)
		os.Exit(1)
	}
}

func run() error {
	world, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return err
	}
	var (
		ballotAddr = types.AddressFromUint64(0xBA110)
		chair      = types.AddressFromUint64(0xC4A12)
	)
	ballot, err := contracts.NewBallot(world, ballotAddr, chair,
		[]string{"increase-blocksize", "decrease-blocksize", "do-nothing"})
	if err != nil {
		return err
	}

	// Register 24 voters; 4 will delegate instead of voting directly.
	voters := make([]types.Address, 24)
	for i := range voters {
		voters[i] = types.AddressFromUint64(uint64(1000 + i))
		if err := ballot.SeedVoter(world, voters[i]); err != nil {
			return err
		}
	}

	var calls []contract.Call
	mk := func(sender types.Address, fn string, args ...any) contract.Call {
		return contract.Call{Sender: sender, Contract: ballotAddr, Function: fn,
			Args: args, GasLimit: 200_000}
	}
	// Four delegations to voter 0, then everyone else votes; voter 5 tries
	// to vote twice (the double-vote race from the paper's Listing 1).
	for i := 1; i <= 4; i++ {
		calls = append(calls, mk(voters[i], "delegate", voters[0]))
	}
	for i := 0; i < len(voters); i++ {
		if i >= 1 && i <= 4 {
			continue // delegated
		}
		calls = append(calls, mk(voters[i], "vote", uint64(i%2)))
	}
	calls = append(calls, mk(voters[5], "vote", uint64(0))) // double vote

	parent := chain.GenesisHeader(types.HashString("ballot-example"))
	pre := world.Snapshot()

	// Serial baseline (instrumented single worker, as in the paper).
	serial, err := miner.MineParallel(runtime.NewSimRunnerInterference(150), world, parent, calls,
		miner.Config{Workers: 1})
	if err != nil {
		return err
	}
	world.Restore(pre)
	res, err := miner.MineParallel(runtime.NewSimRunnerInterference(150), world, parent, calls,
		miner.Config{Workers: 3})
	if err != nil {
		return err
	}

	fmt.Printf("block of %d transactions (%d delegations, %d votes, 1 double-vote)\n",
		len(calls), 4, len(calls)-5)
	fmt.Printf("serial:   %d virtual time units\n", serial.Makespan)
	fmt.Printf("parallel: %d virtual time units (%.2fx speedup, 3 workers)\n",
		res.Makespan, float64(serial.Makespan)/float64(res.Makespan))
	fmt.Printf("schedule: %d happens-before edges\n\n", len(res.Block.Schedule.Edges))

	reverted := 0
	for _, r := range res.Block.Receipts {
		if r.Reverted {
			reverted++
			fmt.Printf("reverted %s: %s\n", r.Tx, r.Reason)
		}
	}
	fmt.Printf("%d committed, %d reverted\n\n", len(calls)-reverted, reverted)

	// Read the result through a serial transaction.
	var winner string
	_, err = runtime.NewSimRunner().Run(1, func(th runtime.Thread) {
		tx := stm.BeginSerial(0, th, gas.NewMeter(1_000_000), world.Schedule())
		out := contract.Execute(world, tx, contract.Call{
			Sender: chair, Contract: ballotAddr, Function: "winnerName", GasLimit: 1_000_000,
		})
		if out.Kind == contract.OutcomeCommitted {
			winner = out.Result.(string)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("winning proposal: %q\n", winner)
	return nil
}
