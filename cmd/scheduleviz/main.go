// Command scheduleviz mines one block and prints its discovered schedule:
// the happens-before graph (optionally as Graphviz DOT), the serial order
// S, per-transaction lock profiles, and the parallelism metrics the paper
// proposes rewarding miners by (§4: "reward miners more for publishing
// highly parallel schedules (for example, as measured by critical path
// length)").
//
// Usage:
//
//	scheduleviz [-kind Ballot|SimpleAuction|EtherDoc|Mixed|Token]
//	            [-txs 30] [-conflict 30] [-workers 3] [-seed 1]
//	            [-dot]     # emit Graphviz DOT instead of text
//	            [-profiles] # also dump per-transaction lock profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/miner"
	"contractstm/internal/reward"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/types"
	"contractstm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduleviz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kindName = flag.String("kind", "Mixed", "workload kind: Ballot, SimpleAuction, EtherDoc, Mixed or Token")
		txs      = flag.Int("txs", 30, "transactions in the block")
		conflict = flag.Int("conflict", 30, "data conflict percentage")
		workers  = flag.Int("workers", 3, "miner pool size")
		seed     = flag.Int64("seed", 1, "workload seed")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT")
		profiles = flag.Bool("profiles", false, "dump per-transaction lock profiles")
	)
	flag.Parse()

	kind, err := workload.ParseKind(*kindName)
	if err != nil {
		return err
	}
	wl, err := workload.Generate(workload.Params{
		Kind: kind, Transactions: *txs, ConflictPercent: *conflict, Seed: *seed,
	})
	if err != nil {
		return err
	}
	res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World,
		chain.GenesisHeader(types.HashString("viz-genesis")), wl.Calls,
		miner.Config{Workers: *workers})
	if err != nil {
		return err
	}

	if *dot {
		writeDOT(res, wl)
		return nil
	}

	fmt.Printf("block: %s, %d transactions, %d%% conflict, %d workers\n",
		kind, *txs, *conflict, *workers)
	fmt.Printf("outcomes: %d committed, %d reverted, %d retries\n",
		res.Stats.Committed, res.Stats.Reverted, res.Stats.Retries)

	metrics, err := sched.Metrics(res.Graph)
	if err != nil {
		return err
	}
	fmt.Printf("happens-before: %d edges, critical path %d, max width %.2f\n\n",
		metrics.Edges, metrics.CriticalPathLen, metrics.MaxWidth)

	breakdown, err := reward.Compute(res.Block, reward.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("miner reward (§4 incentive): base %d + parallelism bonus %d (factor %.2f) = %d\n\n",
		breakdown.Base, breakdown.Bonus, breakdown.Parallelism, breakdown.Total)

	fmt.Printf("serial order S: %v\n\n", res.Block.Schedule.Order)

	fmt.Println("fork-join program (Algorithm 2): task -> joins")
	for _, tx := range res.Block.Schedule.Order {
		preds := res.Graph.Preds(int(tx))
		if len(preds) == 0 {
			fmt.Printf("  %-6s [%s] runs immediately\n", tx, wl.Calls[tx].Function)
			continue
		}
		fmt.Printf("  %-6s [%s] joins %v\n", tx, wl.Calls[tx].Function, preds)
	}

	if *profiles {
		fmt.Println("\nlock profiles (lock, mode, use counter):")
		for _, p := range res.Block.Profiles {
			fmt.Printf("  %s:", p.Tx)
			if len(p.Entries) == 0 {
				fmt.Printf(" (none)")
			}
			for _, e := range p.Entries {
				fmt.Printf(" %s/%s=%d", e.Lock, e.Mode, e.Counter)
			}
			fmt.Println()
		}
	}
	return nil
}

func writeDOT(res miner.Result, wl *workload.Workload) {
	fmt.Println("digraph happensbefore {")
	fmt.Println("  rankdir=LR;")
	for i := 0; i < res.Graph.N(); i++ {
		label := fmt.Sprintf("tx%d\\n%s", i, wl.Calls[i].Function)
		shape := "ellipse"
		if res.Block.Receipts[i].Reverted {
			shape = "box"
		}
		fmt.Printf("  tx%d [label=\"%s\", shape=%s];\n", i, label, shape)
	}
	for _, e := range res.Block.Schedule.Edges {
		fmt.Printf("  tx%d -> tx%d;\n", e.From, e.To)
	}
	fmt.Println("}")
}
