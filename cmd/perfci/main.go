// Command perfci compares a blockbench -slo artifact (BENCH_hotpath.json)
// against the checked-in hot-path thresholds (bench/slo_thresholds.json).
//
// CI runs it in two modes:
//
//	perfci -bench BENCH_hotpath.json                    # informational (PRs):
//	                                                    # report violations, exit 0
//	perfci -bench BENCH_hotpath.json -enforce           # enforcing (main):
//	                                                    # any violation exits 1
//
// Allocation limits are the hard guarantees — allocs/op is deterministic
// for the fixed SLO workload — while the time-based floors and ratios carry
// wide headroom for machine variance.
package main

import (
	"flag"
	"fmt"
	"os"

	"contractstm/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perfci:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchPath  = flag.String("bench", "BENCH_hotpath.json", "hot-path report written by blockbench -slo")
		thresholds = flag.String("thresholds", "bench/slo_thresholds.json", "threshold file to compare against")
		enforce    = flag.Bool("enforce", false, "exit nonzero on any SLO violation (CI main-branch mode)")
	)
	flag.Parse()

	report, err := readReport(*benchPath)
	if err != nil {
		return err
	}
	tf, err := os.Open(*thresholds)
	if err != nil {
		return err
	}
	limits, err := bench.ReadSLOThresholds(tf)
	tf.Close()
	if err != nil {
		return err
	}

	violations := bench.CheckSLO(report, limits)
	fmt.Printf("perfci: %d checks against %s\n", len(limits.Checks), *thresholds)
	bench.WriteHotpathTable(os.Stdout, report)
	if len(violations) == 0 {
		fmt.Println("\nall hot-path SLOs met")
		return nil
	}
	fmt.Printf("\n%d SLO violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Println("  FAIL", v)
	}
	if *enforce {
		os.Exit(1)
	}
	fmt.Println("(informational mode: not failing the build)")
	return nil
}

func readReport(path string) (bench.HotpathReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.HotpathReport{}, err
	}
	defer f.Close()
	return bench.ReadHotpathReport(f)
}
