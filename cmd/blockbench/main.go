// Command blockbench regenerates the paper's evaluation (§7): Table 1,
// every Figure 1 chart, and the Appendix B running-time charts, over the
// deterministic simulated-time runtime (or real OS threads with -mode
// real on multi-core hosts).
//
// Usage:
//
//	blockbench                     # everything: figure 1, table 1, appendix B
//	blockbench -table1             # only Table 1
//	blockbench -figure1            # only Figure 1 series
//	blockbench -appendixb          # only Appendix B times
//	blockbench -engines            # engine comparison: serial vs speculative vs occ
//	blockbench -engine occ         # run the sweeps with a specific engine as the miner
//	blockbench -cluster            # multi-node sweep: blocks/s across 1-4 validating peers
//	blockbench -persist            # durability sweep: no persistence vs WAL (sync/nosync) vs WAL+snapshots
//	blockbench -pipeline 4         # pipeline sweep: blocks/s at depths 1,2,4 under WAL-synced persistence
//	blockbench -receipts           # receipt latency: submit → durable /v1 receipt, depths 1 and 4
//	blockbench -slo                # hot-path SLO sweep; writes BENCH_hotpath.json for cmd/perfci
//	blockbench -sync               # catch-up sweep: serial vs staged import; writes BENCH_sync.json
//	blockbench -reads              # read scale-out sweep: QPS per replica count, SSE fan-out, miner overhead; writes BENCH_reads.json
//	blockbench -pipeline 2 -blocks 8  # short smoke: depths 1,2 over 8 blocks
//	blockbench -csv out.csv        # also write every data point as CSV
//	blockbench -quick              # reduced sweeps (fast sanity run)
//	blockbench -workers 3 -runs 5  # pool size and repetitions
//	blockbench -mode real          # wall-clock mode (multi-core hosts)
//	blockbench -policy lazy        # lazy speculative writes ablation
//	blockbench -interference -1    # ideal simulated cores (no contention)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"contractstm/internal/bench"
	"contractstm/internal/engine"
	"contractstm/internal/stm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blockbench:", err)
		os.Exit(1)
	}
}

// writeCSV emits one sweep's data points to path ("" = no CSV wanted).
func writeCSV(path string, emit func(io.Writer)) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create csv: %w", err)
	}
	emit(f)
	if err := f.Close(); err != nil {
		return fmt.Errorf("close csv: %w", err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run() error {
	var (
		table1    = flag.Bool("table1", false, "print Table 1 (average speedups)")
		figure1   = flag.Bool("figure1", false, "print Figure 1 series (speedups over block size and conflict)")
		appendixB = flag.Bool("appendixb", false, "print Appendix B (running times, mean ± stddev)")
		csvPath   = flag.String("csv", "", "write all data points to this CSV file")
		quick     = flag.Bool("quick", false, "use reduced sweeps")
		workers   = flag.Int("workers", 3, "miner/validator pool size (paper: 3)")
		runs      = flag.Int("runs", 0, "measured runs per point (default: 1 sim, 5 real)")
		warmups   = flag.Int("warmups", 0, "warm-up runs per point (default: 0 sim, 3 real)")
		mode      = flag.String("mode", "sim", `time base: "sim" (deterministic virtual time) or "real" (wall clock)`)
		policy    = flag.String("policy", "eager", `speculative write policy: "eager" or "lazy"`)
		engName   = flag.String("engine", "speculative", `execution engine measured as the miner: "serial", "speculative" or "occ"`)
		engines   = flag.Bool("engines", false, "print the engine comparison (every benchmark under every engine)")
		clusterF  = flag.Bool("cluster", false, "run the multi-node propagation sweep (wall-clock, 1-4 validating peers per engine)")
		persistF  = flag.Bool("persist", false, "run the durability sweep (wall-clock, no-persistence vs WAL sync/nosync vs WAL+snapshots per engine)")
		pipelineF = flag.Int("pipeline", 0, "run the pipeline-depth sweep up to this depth (wall-clock, WAL-synced; 0 = off)")
		receiptsF = flag.Bool("receipts", false, "run the receipt-latency sweep (wall-clock: submit → durable /v1 receipt per engine at pipeline depths 1 and 4)")
		blocksF   = flag.Int("blocks", 0, "blocks per point for the pipeline sweep (0 = default 8)")
		sloF      = flag.Bool("slo", false, "run the hot-path SLO sweep (wall-clock codec + engine metrics) and write the JSON artifact")
		sloOut    = flag.String("slojson", "BENCH_hotpath.json", "output path for the -slo JSON artifact")
		syncF     = flag.Bool("sync", false, "run the catch-up sync sweep (serial vs staged import pipeline) and write the JSON artifact")
		syncOut   = flag.String("syncjson", "BENCH_sync.json", "output path for the -sync JSON artifact")
		admitF    = flag.Bool("admission", false, "run the mempool admission sweep (1M-sender ingest + adversarial flooder) and write the JSON artifact")
		admitOut  = flag.String("admissionjson", "BENCH_admission.json", "output path for the -admission JSON artifact")
		readsF    = flag.Bool("reads", false, "run the read scale-out sweep (replica QPS, SSE fan-out, miner overhead) and write the JSON artifact")
		readsOut  = flag.String("readsjson", "BENCH_reads.json", "output path for the -reads JSON artifact")
		interfere = flag.Int("interference", bench.DefaultInterferencePerMille,
			"simulated memory contention in per-mille per extra active core; negative = ideal cores")
	)
	flag.Parse()

	all := !*table1 && !*figure1 && !*appendixB && !*engines && !*clusterF && !*persistF && *pipelineF == 0 && !*receiptsF && !*sloF && !*syncF && !*admitF && !*readsF
	cfg := bench.Config{
		Workers:              *workers,
		Runs:                 *runs,
		Warmups:              *warmups,
		InterferencePerMille: *interfere,
	}
	engKind, err := engine.ParseKind(*engName)
	if err != nil {
		return err
	}
	cfg.Engine = engKind
	switch *mode {
	case "sim":
		cfg.Mode = bench.ModeSim
	case "real":
		cfg.Mode = bench.ModeReal
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	switch *policy {
	case "eager":
		cfg.Policy = stm.PolicyEager
	case "lazy":
		cfg.Policy = stm.PolicyLazy
	default:
		return fmt.Errorf("unknown -policy %q", *policy)
	}

	sizes, conflicts := bench.BlockSizes, bench.ConflictPercents
	if *quick {
		sizes = []int{10, 50, 200, 400}
		conflicts = []int{0, 50, 100}
	}

	// All engines by default; an explicit -engine narrows wall-clock
	// sweeps (-cluster, -persist) to the one selected.
	narrowEngines, engNarrowLabel := []engine.Kind(nil), "all"
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			narrowEngines, engNarrowLabel = []engine.Kind{engKind}, engKind.String()
		}
	})

	if *sloF {
		scfg := bench.SLOConfig{Workers: *workers}
		report, err := bench.RunSLO(scfg)
		if err != nil {
			return err
		}
		bench.WriteHotpathTable(os.Stdout, report)
		f, err := os.Create(*sloOut)
		if err != nil {
			return fmt.Errorf("create %s: %w", *sloOut, err)
		}
		if err := bench.WriteHotpathJSON(f, report); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", *sloOut, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *sloOut, err)
		}
		fmt.Printf("\nwrote %s\n", *sloOut)
		return nil
	}

	if *syncF {
		ycfg := bench.SyncConfig{Workers: *workers}
		if narrowEngines != nil {
			ycfg.Engine = engKind
		}
		if *quick {
			ycfg.Blocks, ycfg.BlockSize = 16, 16
		}
		if *blocksF > 0 {
			ycfg.Blocks = *blocksF
		}
		report, err := bench.SweepSync(ycfg)
		if err != nil {
			return err
		}
		bench.WriteSyncTable(os.Stdout, report)
		f, err := os.Create(*syncOut)
		if err != nil {
			return fmt.Errorf("create %s: %w", *syncOut, err)
		}
		if err := bench.WriteSyncJSON(f, report); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", *syncOut, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *syncOut, err)
		}
		fmt.Printf("wrote %s\n", *syncOut)
		return nil
	}

	if *admitF {
		acfg := bench.AdmissionConfig{}
		if *quick {
			acfg.Senders, acfg.SubmitOps = 50_000, 20_000
		}
		report, err := bench.RunAdmission(acfg)
		if err != nil {
			return err
		}
		bench.WriteAdmissionTable(os.Stdout, report)
		f, err := os.Create(*admitOut)
		if err != nil {
			return fmt.Errorf("create %s: %w", *admitOut, err)
		}
		if err := bench.WriteAdmissionJSON(f, report); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", *admitOut, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *admitOut, err)
		}
		fmt.Printf("\nwrote %s\n", *admitOut)
		return nil
	}

	if *readsF {
		rcfg := bench.ReadsConfig{Workers: *workers}
		if narrowEngines != nil {
			rcfg.Engine = engKind
		}
		if *quick {
			rcfg.Blocks, rcfg.Reads = 4, 300
			rcfg.Subscribers, rcfg.MinerBlocks = 100, 4
		}
		report, err := bench.SweepReads(rcfg)
		if err != nil {
			return err
		}
		bench.WriteReadsTable(os.Stdout, report)
		f, err := os.Create(*readsOut)
		if err != nil {
			return fmt.Errorf("create %s: %w", *readsOut, err)
		}
		if err := bench.WriteReadsJSON(f, report); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", *readsOut, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *readsOut, err)
		}
		fmt.Printf("wrote %s\n", *readsOut)
		return nil
	}

	if *clusterF {
		ccfg := bench.ClusterConfig{Workers: *workers, Engines: narrowEngines}
		if *quick {
			ccfg.Blocks, ccfg.BlockSize, ccfg.PeerCounts = 2, 16, []int{1, 2}
		}
		ccfg = ccfg.WithDefaults()
		fmt.Printf("blockbench: cluster sweep, workers=%d engine=%s peers=%v\n\n",
			*workers, engNarrowLabel, ccfg.PeerCounts)
		points, err := bench.SweepCluster(ccfg)
		if err != nil {
			return err
		}
		bench.WriteClusterSweep(os.Stdout, ccfg, points)
		return writeCSV(*csvPath, func(w io.Writer) { bench.WriteClusterCSV(w, points) })
	}

	if *pipelineF > 0 {
		pcfg := bench.PipelineConfig{
			Workers: *workers, Engines: narrowEngines,
			Depths: bench.DepthsUpTo(*pipelineF), Blocks: *blocksF,
		}
		if *quick {
			pcfg.Blocks, pcfg.BlockSize = 4, 16
			if *blocksF > 0 {
				pcfg.Blocks = *blocksF
			}
		}
		pcfg = pcfg.WithDefaults()
		fmt.Printf("blockbench: pipeline sweep, workers=%d engine=%s depths=%v\n\n",
			*workers, engNarrowLabel, pcfg.Depths)
		points, err := bench.SweepPipeline(pcfg)
		if err != nil {
			return err
		}
		bench.WritePipelineSweep(os.Stdout, pcfg, points)
		return writeCSV(*csvPath, func(w io.Writer) { bench.WritePipelineCSV(w, points) })
	}

	if *receiptsF {
		rcfg := bench.ReceiptConfig{Workers: *workers, Engines: narrowEngines, Blocks: *blocksF}
		if *quick {
			rcfg.Blocks, rcfg.BlockSize, rcfg.Samples = 3, 16, 6
			if *blocksF > 0 {
				rcfg.Blocks = *blocksF
			}
		}
		rcfg = rcfg.WithDefaults()
		fmt.Printf("blockbench: receipt-latency sweep, workers=%d engine=%s depths=%v\n\n",
			*workers, engNarrowLabel, rcfg.Depths)
		points, err := bench.SweepReceipts(rcfg)
		if err != nil {
			return err
		}
		bench.WriteReceiptSweep(os.Stdout, rcfg, points)
		return writeCSV(*csvPath, func(w io.Writer) { bench.WriteReceiptCSV(w, points) })
	}

	if *persistF {
		pcfg := bench.PersistenceConfig{Workers: *workers, Engines: narrowEngines}
		if *quick {
			pcfg.Blocks, pcfg.BlockSize = 3, 16
		}
		pcfg = pcfg.WithDefaults()
		fmt.Printf("blockbench: persistence sweep, workers=%d engine=%s\n\n", *workers, engNarrowLabel)
		points, err := bench.SweepPersistence(pcfg)
		if err != nil {
			return err
		}
		bench.WritePersistenceSweep(os.Stdout, pcfg, points)
		return writeCSV(*csvPath, func(w io.Writer) { bench.WritePersistenceCSV(w, points) })
	}

	engLabel := cfg.Engine.String()
	if *engines {
		engLabel = "all"
	}
	fmt.Printf("blockbench: mode=%s workers=%d policy=%s engine=%s sizes=%v conflicts=%v\n\n",
		cfg.Mode, *workers, cfg.Policy, engLabel, sizes, conflicts)

	if *engines {
		cmps, err := bench.RunEngineComparison(cfg, sizes, conflicts)
		if err != nil {
			return err
		}
		for _, c := range cmps {
			bench.WriteEngineComparison(os.Stdout, c)
		}
		return writeCSV(*csvPath, func(w io.Writer) { bench.WriteEngineCSV(w, cmps) })
	}

	figs, table, err := bench.RunAll(cfg, sizes, conflicts)
	if err != nil {
		return err
	}

	if all || *figure1 {
		for _, f := range figs {
			bench.WriteFigure1(os.Stdout, f)
		}
	}
	if all || *appendixB {
		for _, f := range figs {
			bench.WriteAppendixB(os.Stdout, f, bench.TimeUnit(cfg.Mode))
		}
	}
	if all || *table1 {
		bench.WriteTable1(os.Stdout, table)
	}
	return writeCSV(*csvPath, func(w io.Writer) { bench.WriteCSV(w, figs) })
}
