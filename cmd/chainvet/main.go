// Command chainvet runs the repo's invariant-checking static-analysis
// suite (internal/analysis): detmap, walltime, nogob, lockscope,
// poolpair, errsync.
//
// Standalone:
//
//	chainvet ./...           # human-readable findings, exit 1 if any
//	chainvet -json ./...     # machine-readable findings for tooling
//	chainvet -list           # print the passes and their one-liners
//
// As a go vet tool (the unit protocol — findings then surface through
// `go vet` with its caching and package graph):
//
//	go vet -vettool=$(command -v chainvet) ./...
//
// Findings are suppressed only by an in-tree justified directive:
//
//	//chainvet:allow(<pass>) <reason>
//
// See docs/LINTS.md for each pass's invariant and examples.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"contractstm/internal/analysis"
	"contractstm/internal/analysis/driver"
	"contractstm/internal/analysis/suite"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The go vet protocol probes the tool before use: `-V=full` must
	// print an identity line, `-flags` a JSON flag description.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return 0
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// A single *.cfg argument means the go command is driving us as a
	// vet unit.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		return runVetUnit(os.Args[1])
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON (for pre-commit hooks and CI gating)")
	list := flag.Bool("list", false, "list the suite's passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chainvet [-json] [packages]\n       chainvet <unit>.cfg   (go vet -vettool mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := driver.Run(".", patterns, suite.Analyzers(), suite.Known())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chainvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		out := struct {
			Count    int                   `json:"count"`
			Findings []analysis.Diagnostic `json:"findings"`
		}{Count: len(diags), Findings: diags}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "chainvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "chainvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func runVetUnit(cfg string) int {
	diags, err := driver.RunUnit(cfg, suite.Analyzers(), suite.Known())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chainvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion answers `-V=full`: the go command hashes the reply into
// its build cache key, so it must identify this exact binary.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		_ = f.Close()
	}
	fmt.Printf("chainvet version devel buildID=%x\n", h.Sum(nil))
}
