// Command nodesrv runs a single blockchain node over HTTP: a mempool, the
// speculative parallel miner and the deterministic fork-join validator
// behind the JSON API of internal/node. A demo world (Token, Ballot,
// SimpleAuction, EtherDoc contracts at well-known addresses) is deployed
// at genesis so the API is immediately usable.
//
// Usage:
//
//	nodesrv [-addr :8547] [-workers 3] [-policy fifo|spread|lockhint] [-engine serial|speculative|occ]
//	        [-data DIR] [-sync-every 1] [-snap-every 256] [-pipeline 1]
//	        [-max-gas 100000000] [-default-gas 1000000] [-blocksize 100]
//	        [-mempool-shards 16] [-mempool-sender-slots 0] [-mempool-rate 0]
//	        [-mempool-burst 8] [-mempool-max-bytes 0] [-mempool-shard-entries 0]
//	        [-pprof 127.0.0.1:6060]
//	        [-upstream http://primary:8547] [-history] [-subscriber-buffer 64]
//
// The -mempool-* flags tune transaction admission on POST /v1/tx: the
// pool is sharded by sender (-mempool-shards), each sender may hold at
// most -mempool-sender-slots queued transactions (0 = unlimited) and
// submit at -mempool-rate per second with bursts of -mempool-burst
// (0 = unlimited), and the pool sheds load beyond -mempool-max-bytes
// total or -mempool-shard-entries per shard (0 = unlimited). Shed
// submissions answer 429 with a Retry-After hint; the Go SDK honors it.
//
// With -data the node is durable: blocks append to a write-ahead log
// before becoming visible, state snapshots are written every -snap-every
// blocks, and a restart with the same -data recovers the chain (and the
// pending mempool, saved on graceful shutdown via SIGINT/SIGTERM) by
// replaying the WAL through the validator.
//
// With -pipeline N (N >= 2) block production is pipelined: POST /mine
// returns once the block is sealed, its WAL fsync runs in the background
// group-commit writer, and GET /status reports the sealed height next to
// the durable height. Depth 1 (the default) is fully synchronous.
//
// With -upstream URL the node runs as a read replica: it catches up from
// the primary, follows its event stream through the relay (one upstream
// subscription no matter how many local /v1/subscribe clients), and
// serves the read API at its own durable height — every response carries
// X-Chain-Height, and min_height-gated reads answer 412 when the replica
// is behind. Add -history to also serve historical state queries
// (GET /v1/state/{addr}?height=H) from a shadow copy of the demo
// genesis. -subscriber-buffer widens each local subscriber's event
// buffer, which relay nodes serving many downstream clients want.
//
// Example session:
//
//	curl -s localhost:8547/v1/status
//	ID=$(curl -s -X POST -H 'Content-Type: application/json' localhost:8547/v1/tx -d '{
//	  "sender":   "<0x… funded holder>",
//	  "contract": "<0x… token address>",
//	  "function": "transfer",
//	  "args": [{"type":"address","value":"0x…"},{"type":"uint64","value":"5"}],
//	  "gasLimit": 100000}' | sed 's/.*"id":"\([^"]*\)".*/\1/')
//	curl -s -X POST localhost:8547/v1/mine -d '{"blockSize": 100}'
//	curl -s localhost:8547/v1/tx/$ID        # the receipt, once durable
//	curl -s localhost:8547/v1/head
//
// The unversioned routes (/tx, /mine, /status, …) remain as deprecated
// aliases for one release; see docs/API.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"contractstm/internal/api"
	"contractstm/internal/contract"
	"contractstm/internal/contracts"
	"contractstm/internal/engine"
	"contractstm/internal/gas"
	"contractstm/internal/mempool"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/replica"
	"contractstm/internal/txpool"
	"contractstm/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nodesrv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8547", "listen address")
		workers    = flag.Int("workers", 3, "miner/validator pool size")
		policyName = flag.String("policy", "fifo", `block selection: "fifo", "spread" or "lockhint"`)
		engName    = flag.String("engine", "speculative", `execution engine: "serial", "speculative" or "occ"`)
		dataDir    = flag.String("data", "", "durable data directory (empty = in-memory only)")
		syncEvery  = flag.Int("sync-every", 1, "fsync the WAL every N blocks (negative = never)")
		snapEvery  = flag.Int("snap-every", persist.DefaultSnapshotEvery, "write a state snapshot every N blocks (negative = never)")
		pipeline   = flag.Int("pipeline", 1, "sealed-not-durable pipeline window (1 = synchronous mining)")
		maxGas     = flag.Uint64("max-gas", api.DefaultMaxGasLimit, "reject submitted transactions with a gas limit above this")
		defaultGas = flag.Uint64("default-gas", api.DefaultGasLimit, "gas limit assigned to transactions that leave it unset")
		blockSize  = flag.Int("blocksize", api.DefaultBlockSize, "default block size for mine requests that leave it unset")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. 127.0.0.1:6060; empty = off)")
		importMode = flag.String("import-mode", "off", `staged parallel import rollout: "off", "shadow" or "on"`)

		mpShards       = flag.Int("mempool-shards", 0, "mempool shard count (0 = default 16)")
		mpSenderSlots  = flag.Int("mempool-sender-slots", 0, "max queued transactions per sender (0 = unlimited)")
		mpRate         = flag.Float64("mempool-rate", 0, "per-sender admission rate limit in tx/s (0 = unlimited)")
		mpBurst        = flag.Int("mempool-burst", 0, "per-sender admission burst size (0 = default 8)")
		mpMaxBytes     = flag.Int64("mempool-max-bytes", 0, "total mempool byte budget; beyond it lower-priority transactions are evicted (0 = unlimited)")
		mpShardEntries = flag.Int("mempool-shard-entries", 0, "max entries per mempool shard (0 = unlimited)")

		upstream  = flag.String("upstream", "", "primary node URL; set it to run as a read replica")
		history   = flag.Bool("history", false, "with -upstream, serve historical state queries from a shadow world")
		subBuffer = flag.Int("subscriber-buffer", 0, "per-subscriber event buffer on /v1/subscribe (0 = default 64)")
	)
	flag.Parse()

	policy, err := txpool.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	engKind, err := engine.ParseKind(*engName)
	if err != nil {
		return err
	}
	impMode, err := node.ParseImportMode(*importMode)
	if err != nil {
		return err
	}

	world, err := demoWorld()
	if err != nil {
		return err
	}
	n, err := node.New(node.Config{
		World: world, Workers: *workers, SelectionPolicy: policy, Engine: engKind,
		DataDir:          *dataDir,
		Persist:          persist.Options{SyncEvery: *syncEvery, SnapshotEvery: *snapEvery},
		PipelineDepth:    *pipeline,
		MaxGasLimit:      *maxGas,
		DefaultGasLimit:  *defaultGas,
		DefaultBlockSize: *blockSize,
		ImportMode:       impMode,
		SubscriberBuffer: *subBuffer,
		Mempool: mempool.Config{
			Shards:          *mpShards,
			PerSenderSlots:  *mpSenderSlots,
			RatePerSec:      *mpRate,
			Burst:           *mpBurst,
			MaxBytes:        *mpMaxBytes,
			MaxShardEntries: *mpShardEntries,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("nodesrv listening on %s (workers=%d, policy=%s, engine=%s, pipeline=%d)\n",
		*addr, *workers, *policyName, engKind, *pipeline)
	if *dataDir != "" {
		st := n.CurrentStatus()
		fmt.Printf("durable: data=%s height=%d recovered=%d blocks, pool=%d pending\n",
			*dataDir, st.Height, st.RecoveredBlocks, st.PoolLen)
	}
	printDemoAddresses()

	// Profiling stays off the public API listener: -pprof binds a separate
	// (typically loopback-only) address so operators can capture profiles
	// from a live node without exposing the debug surface to clients.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "nodesrv: pprof listener:", err)
			}
		}()
		defer pprofSrv.Close()
		fmt.Printf("pprof listening on %s (side listener, keep it private)\n", *pprofAddr)
	}

	// Slow-client protection: bound header and request reads and reap
	// idle keep-alive connections. WriteTimeout stays unset — the
	// /v1/subscribe event stream is a deliberately long-lived response,
	// and per-request handling is already bounded by the API layer's
	// route timeouts.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           n.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// Every node shuts down gracefully on SIGINT/SIGTERM: in-flight
	// requests drain, and a durable node additionally saves its pending
	// mempool and cleanly syncs the WAL in Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *upstream != "" {
		rcfg := replica.Config{
			Node: n, Upstream: *upstream,
			ErrorLog: func(err error) { fmt.Fprintln(os.Stderr, "nodesrv: replica:", err) },
		}
		if *history {
			// The shadow world rebuilds the same deterministic demo
			// genesis; AttachHistory cross-checks it against the chain.
			shadow, err := demoWorld()
			if err != nil {
				return err
			}
			rcfg.ShadowWorld = shadow
		}
		rep, err := replica.New(rcfg)
		if err != nil {
			return err
		}
		go func() {
			if err := rep.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				// A dead relay means a silently staling replica — stop
				// serving rather than drift unboundedly behind.
				fmt.Fprintln(os.Stderr, "nodesrv: replica stopped:", err)
				stop()
			}
		}()
		fmt.Printf("replica: following %s (history=%v)\n", *upstream, *history)
	} else if *history {
		return errors.New("-history requires -upstream")
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := n.Close(); err != nil {
		return err
	}
	if *dataDir != "" {
		fmt.Println("nodesrv: state and mempool saved, bye")
	} else {
		fmt.Println("nodesrv: bye")
	}
	return nil
}

// Demo genesis: four contracts at deterministic addresses and ten funded
// token holders.
var (
	demoToken   = types.AddressFromUint64(0x70C3)
	demoBallot  = types.AddressFromUint64(0xBA11)
	demoAuction = types.AddressFromUint64(0xA0C7)
	demoDocs    = types.AddressFromUint64(0xD0C5)
	demoChair   = types.AddressFromUint64(0xC4A1)
)

func demoWorld() (*contract.World, error) {
	w, err := contract.NewWorld(gas.DefaultSchedule())
	if err != nil {
		return nil, err
	}
	token, err := contracts.NewToken(w, demoToken, demoChair, 1_000_000_000)
	if err != nil {
		return nil, err
	}
	ballot, err := contracts.NewBallot(w, demoBallot, demoChair, []string{"alpha", "beta", "gamma"})
	if err != nil {
		return nil, err
	}
	if _, err := contracts.NewSimpleAuction(w, demoAuction, demoChair); err != nil {
		return nil, err
	}
	if _, err := contracts.NewEtherDoc(w, demoDocs); err != nil {
		return nil, err
	}
	for i := 0; i < 10; i++ {
		holder := types.AddressFromUint64(uint64(0x4000 + i))
		if err := token.SeedBalance(w, holder, 10_000); err != nil {
			return nil, err
		}
		if err := ballot.SeedVoter(w, holder); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func printDemoAddresses() {
	fmt.Println("demo contracts:")
	fmt.Printf("  token    %s\n", demoToken)
	fmt.Printf("  ballot   %s\n", demoBallot)
	fmt.Printf("  auction  %s\n", demoAuction)
	fmt.Printf("  etherdoc %s\n", demoDocs)
	fmt.Println("funded holders / registered voters:")
	for i := 0; i < 10; i++ {
		fmt.Printf("  %s\n", types.AddressFromUint64(uint64(0x4000+i)))
	}
}
