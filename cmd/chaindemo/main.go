// Command chaindemo runs the full pipeline end to end: it builds a small
// blockchain by speculatively mining several blocks of mixed contract
// transactions in parallel, validates each block with the deterministic
// fork-join validator before appending it, and finally demonstrates that
// tampering is caught (a forged state root and a stripped schedule are both
// rejected).
//
// Usage:
//
//	chaindemo [-blocks 4] [-txs 60] [-conflict 20] [-workers 3] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"contractstm/internal/chain"
	"contractstm/internal/miner"
	"contractstm/internal/runtime"
	"contractstm/internal/sched"
	"contractstm/internal/types"
	"contractstm/internal/validator"
	"contractstm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaindemo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		blocks   = flag.Int("blocks", 4, "number of blocks to mine")
		txs      = flag.Int("txs", 60, "transactions per block")
		conflict = flag.Int("conflict", 20, "data conflict percentage")
		workers  = flag.Int("workers", 3, "miner/validator pool size")
		seed     = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()

	// Each block gets its own deterministic workload; block b's world is
	// the cumulative state of blocks 1..b-1 plus its own genesis fixtures.
	// For demo simplicity each block uses a fresh world seeded differently
	// and the chain records the per-block state roots.
	fmt.Printf("mining %d blocks of %d transactions (%d%% conflict, %d workers)\n\n",
		*blocks, *txs, *conflict, *workers)

	wl, err := workload.Generate(workload.Params{
		Kind: workload.KindMixed, Transactions: *txs * *blocks,
		ConflictPercent: *conflict, Seed: *seed,
	})
	if err != nil {
		return err
	}
	initialRoot, err := wl.World.StateRoot()
	if err != nil {
		return err
	}
	ledger := chain.New(initialRoot)
	preState := wl.World.Snapshot()

	var minedBlocks []chain.Block
	for b := 0; b < *blocks; b++ {
		calls := wl.Calls[b**txs : (b+1)**txs]
		res, err := miner.MineParallel(runtime.NewSimRunner(), wl.World, ledger.Head().Header, calls,
			miner.Config{Workers: *workers})
		if err != nil {
			return fmt.Errorf("mine block %d: %w", b+1, err)
		}
		metrics, err := sched.Metrics(res.Graph)
		if err != nil {
			return err
		}
		fmt.Printf("block %d: mined %3d txs  committed=%d reverted=%d retries=%d  edges=%d critical-path=%d\n",
			b+1, len(calls), res.Stats.Committed, res.Stats.Reverted, res.Stats.Retries,
			metrics.Edges, metrics.CriticalPathLen)
		if err := ledger.Append(res.Block); err != nil {
			return fmt.Errorf("append block %d: %w", b+1, err)
		}
		minedBlocks = append(minedBlocks, res.Block)
	}

	// Re-validate the whole chain from the pre-state, like a freshly
	// joined node (§2: "older blocks are validated by newly-joined
	// miners").
	fmt.Printf("\nreplaying the chain as a validator node...\n")
	wl.World.Restore(preState)
	for i, b := range minedBlocks {
		res, err := validator.Validate(runtime.NewSimRunner(), wl.World, b, validator.Config{Workers: *workers})
		if err != nil {
			return fmt.Errorf("validate block %d: %w", i+1, err)
		}
		fmt.Printf("block %d: validated %3d txs in %d virtual time units\n",
			i+1, len(b.Calls), res.Makespan)
	}

	// Tamper demonstrations.
	fmt.Printf("\ntamper checks:\n")
	wl.World.Restore(preState)
	forged := minedBlocks[0]
	forged.Header.StateRoot = types.HashString("forged state")
	if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, forged, validator.Config{Workers: *workers}); err != nil {
		fmt.Printf("  forged state root rejected: %v\n", firstLine(err))
	} else {
		return fmt.Errorf("forged state root was accepted")
	}

	// Strip the happens-before edges from a block that has some: an
	// over-parallel schedule hiding real conflicts must be caught.
	victim := -1
	for i, b := range minedBlocks {
		if len(b.Schedule.Edges) > 0 {
			victim = i
			break
		}
	}
	if victim >= 0 {
		wl.World.Restore(preState)
		// Advance the validator's world to the victim block's parent state.
		for i := 0; i < victim; i++ {
			if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, minedBlocks[i], validator.Config{Workers: *workers}); err != nil {
				return fmt.Errorf("advance to block %d: %w", i+1, err)
			}
		}
		stripped := minedBlocks[victim]
		stripped.Schedule.Edges = nil
		stripped.Header.ScheduleHash = chain.ScheduleHashOf(stripped.Schedule, stripped.Profiles)
		if _, err := validator.Validate(runtime.NewSimRunner(), wl.World, stripped, validator.Config{Workers: *workers}); err != nil {
			fmt.Printf("  stripped schedule rejected:  %v\n", firstLine(err))
		} else {
			return fmt.Errorf("stripped schedule was accepted")
		}
	}

	fmt.Printf("\nchain height %d, head %s\n", ledger.Length()-1, ledger.Head().Header.Hash().Short())
	return nil
}

func firstLine(err error) string {
	s := err.Error()
	if len(s) > 110 {
		s = s[:110] + "…"
	}
	return s
}
