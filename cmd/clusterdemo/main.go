// Command clusterdemo runs a multi-node cluster over real TCP loopback:
// one mining node seals blocks from a generated workload and broadcasts
// each over HTTP to validating followers, which replay the published
// (S, H) schedule before appending — the paper's miner/validator split
// across process-style boundaries. A late joiner then snapshot fast-syncs
// from the miner: it installs the miner's state checkpoint and replays
// only the blocks after it.
//
// With -data the miner is durable, and the demo adds a kill-and-restart
// act: after the first batch of blocks the miner is stopped cold (no
// graceful shutdown), reopened from its data directory — recovery
// replays the WAL through the validator — and mines more blocks on the
// recovered chain, which the same followers accept seamlessly.
//
// Usage:
//
//	clusterdemo [-followers 2] [-blocks 5] [-blocksize 50]
//	            [-engine speculative] [-kind token] [-conflict 15]
//	            [-workers 3] [-seed 2017] [-data DIR] [-snap-every 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"contractstm/internal/api/wire"
	"contractstm/internal/cluster"
	"contractstm/internal/contract"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/persist"
	"contractstm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterdemo:", err)
		os.Exit(1)
	}
}

// minerProc is the restartable miner: a node behind a real TCP server.
type minerProc struct {
	node *node.Node
	url  string
	srv  *http.Server
}

// startMiner builds a miner node (durable when dataDir is non-empty) and
// serves it on an ephemeral loopback port.
func startMiner(world *contract.World, engKind engine.Kind, workers int, dataDir string, snapEvery int) (*minerProc, error) {
	n, err := node.New(node.Config{
		World: world, Workers: workers, Engine: engKind,
		DataDir: dataDir,
		Persist: persist.Options{SnapshotEvery: snapEvery},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: n.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &minerProc{node: n, url: "http://" + ln.Addr().String(), srv: srv}, nil
}

// kill stops the miner's server and drops its file handles without any
// graceful persistence — the crash the recovery path exists for. The
// WAL already holds every appended block; the pool dies with the
// process, exactly as a real kill -9 would leave things.
func (m *minerProc) kill() {
	_ = m.srv.Close()
	m.node.Kill()
}

// mineAndBroadcast seals `blocks` blocks and ships each to the followers.
func mineAndBroadcast(ctx context.Context, m *minerProc, bcast *cluster.Broadcaster, blocks, blockSize int) error {
	for b := 0; b < blocks; b++ {
		blk, err := m.node.MineOne(blockSize)
		if err != nil {
			return fmt.Errorf("mine block: %w", err)
		}
		deliveries := bcast.Broadcast(ctx, blk)
		if failed := cluster.Failed(deliveries); len(failed) > 0 {
			return fmt.Errorf("broadcast block %d: %v", blk.Header.Number, failed[0].Err)
		}
		fmt.Printf("block %d: %3d txs, %3d edges, hash %s → %d followers validated\n",
			blk.Header.Number, len(blk.Calls), len(blk.Schedule.Edges),
			blk.Header.Hash().Short(), len(deliveries))
	}
	return nil
}

func run() error {
	var (
		followers = flag.Int("followers", 2, "validating follower nodes")
		blocks    = flag.Int("blocks", 5, "blocks to mine and propagate")
		blockSize = flag.Int("blocksize", 50, "transactions per block")
		engName   = flag.String("engine", "speculative", `execution engine: "serial", "speculative" or "occ"`)
		kindName  = flag.String("kind", "token", "workload: ballot, auction, etherdoc, mixed, token or delegation")
		conflict  = flag.Int("conflict", 15, "workload data-conflict percentage")
		workers   = flag.Int("workers", 3, "per-node mining/validation pool size")
		seed      = flag.Int64("seed", 2017, "workload generation seed")
		dataDir   = flag.String("data", "", "miner data directory; enables the kill-and-restart act")
		snapEvery = flag.Int("snap-every", 2, "miner snapshot cadence in blocks (with -data)")
	)
	flag.Parse()

	engKind, err := engine.ParseKind(*engName)
	if err != nil {
		return err
	}
	kind, err := workload.ParseKind(*kindName)
	if err != nil {
		return err
	}
	if *followers < 1 {
		return fmt.Errorf("-followers must be >= 1")
	}
	durable := *dataDir != ""

	// The miner mines two batches when durable (before and after the
	// restart), one otherwise.
	batches := 1
	if durable {
		batches = 2
	}
	params := workload.Params{
		Kind: kind, Transactions: batches * *blocks * *blockSize,
		ConflictPercent: *conflict, Seed: *seed,
	}
	// Every node needs an identical genesis world: miner, followers, one
	// for the late joiner, and one spare genesis copy for the miner's
	// restart (recovery rebuilds on a fresh genesis world).
	allWorlds, calls, err := cluster.GenerateWorlds(params, *followers+3)
	if err != nil {
		return err
	}
	minerWorld, followerWorlds := allWorlds[0], allWorlds[1:*followers+1]
	lateWorld, restartWorld := allWorlds[*followers+1], allWorlds[*followers+2]

	miner, err := startMiner(minerWorld, engKind, *workers, *dataDir, *snapEvery)
	if err != nil {
		return err
	}
	defer miner.kill()

	listen := make([]string, len(followerWorlds))
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	cl, err := cluster.New(cluster.Config{
		Worlds: followerWorlds, Engine: engKind, Workers: *workers, Listen: listen,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	fmt.Printf("cluster: miner + %d followers over TCP (engine=%s, kind=%s, %d%% conflict, durable=%v)\n",
		cl.Len(), engKind, kind, *conflict, durable)
	fmt.Printf("  node 0  miner    %s\n", miner.url)
	for i := 0; i < cl.Len(); i++ {
		fmt.Printf("  node %d  follower %s\n", i+1, cl.URL(i))
	}

	followerPeers := make([]*cluster.Peer, cl.Len())
	for i := range followerPeers {
		followerPeers[i] = cluster.NewPeer(cl.URL(i), nil)
	}
	bcast := &cluster.Broadcaster{Peers: followerPeers}
	ctx := context.Background()

	miner.node.SubmitAll(calls)
	start := time.Now()
	if err := mineAndBroadcast(ctx, miner, bcast, *blocks, *blockSize); err != nil {
		return err
	}
	elapsed := time.Since(start)

	head := miner.node.Head().Header
	fmt.Printf("\nheight %d, head %s, state root %s\n",
		head.Number, head.Hash().Short(), head.StateRoot.Short())
	fmt.Printf("throughput: %.1f blocks/s, %.1f txs/s end-to-end (%s)\n",
		float64(*blocks)/elapsed.Seconds(),
		float64(*blocks**blockSize)/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	// Receipt round-trip through the /v1 SDK: the first submitted call's
	// content-derived ID is queryable on the miner — and on any follower
	// that validated the block — now that the block is durable.
	txID := wire.TxIDOf(calls[0]).String()
	rec, err := cluster.NewPeer(miner.url, nil).Receipt(ctx, txID)
	if err != nil {
		return fmt.Errorf("receipt %s: %w", txID, err)
	}
	fmt.Printf("receipt %s…: %s in block %d (schedule pos %d, gas %d)\n",
		txID[:10], rec.Status, rec.BlockHeight, rec.ScheduleIndex, rec.GasUsed)

	if durable {
		// Act two: kill the miner cold, recover from the data directory,
		// keep mining on the recovered chain.
		pending := miner.node.PoolLen()
		miner.kill()
		fmt.Printf("\nminer killed at height %d (%d txs still pooled, lost with the crash)\n",
			head.Number, pending)
		miner, err = startMiner(restartWorld, engKind, *workers, *dataDir, *snapEvery)
		if err != nil {
			return fmt.Errorf("restart miner: %w", err)
		}
		defer miner.kill()
		st := miner.node.CurrentStatus()
		if st.HeadHash != head.Hash() {
			return fmt.Errorf("recovered head %s != pre-crash head %s", st.HeadHash.Short(), head.Hash().Short())
		}
		fmt.Printf("miner restarted from %s: height %d, head %s (snapshot at %d + %d WAL blocks re-validated)\n",
			*dataDir, st.Height, st.HeadHash.Short(), st.SnapshotHeight, st.RecoveredBlocks)

		// The crash lost the pooled tail; resubmit the unmined calls the
		// way real clients would re-send.
		mined := int(st.Height) * *blockSize
		if mined < len(calls) {
			miner.node.SubmitAll(calls[mined:])
		}
		if err := mineAndBroadcast(ctx, miner, bcast, *blocks, *blockSize); err != nil {
			return err
		}
		head = miner.node.Head().Header
		fmt.Printf("recovered miner reached height %d, head %s\n", head.Number, head.Hash().Short())
	}

	for _, p := range followerPeers {
		h, err := p.Head(ctx)
		if err != nil {
			return err
		}
		if h.Hash != head.Hash() {
			return fmt.Errorf("follower %s head %s != miner %s", p.URL(), h.Hash.Short(), head.Hash().Short())
		}
	}
	fmt.Printf("\nconverged: all %d followers at height %d\n", len(followerPeers), head.Number)

	// Late joiner: snapshot fast-sync from the miner — install the state
	// checkpoint, then replay only the blocks after it.
	late, err := node.New(node.Config{World: lateWorld, Workers: *workers, Engine: engKind})
	if err != nil {
		return err
	}
	res, err := cluster.FastSync(ctx, late, cluster.NewPeer(miner.url, nil))
	if err != nil {
		return fmt.Errorf("late-joiner fast-sync: %w", err)
	}
	lateHead := late.Head().Header
	if lateHead.Hash() != head.Hash() {
		return fmt.Errorf("late joiner head %s != miner %s", lateHead.Hash().Short(), head.Hash().Short())
	}
	if res.Installed {
		fmt.Printf("late joiner: installed snapshot at height %d + %d tail blocks re-validated (skipped %d of %d), head matches\n",
			res.SnapshotHeight, res.Imported, res.SnapshotHeight, head.Number)
	} else {
		fmt.Printf("late joiner: full catch-up, %d blocks re-validated, head matches\n", res.Imported)
	}

	fmt.Println("\nnode status:")
	st := miner.node.CurrentStatus()
	fmt.Printf("  miner:      height=%d mined=%d validated=%d engine=%s persistent=%v\n",
		st.Height, st.MinedBlocks, st.ValidatedBlocks, st.Engine, st.Persistent)
	for i := 0; i < cl.Len(); i++ {
		fst := cl.Node(i).CurrentStatus()
		fmt.Printf("  follower %d: height=%d mined=%d validated=%d engine=%s\n",
			i+1, fst.Height, fst.MinedBlocks, fst.ValidatedBlocks, fst.Engine)
	}
	lst := late.CurrentStatus()
	fmt.Printf("  late:       height=%d chainBase=%d (pruned below base)\n", lst.Height, lst.ChainBase)
	return nil
}
