// Command clusterdemo runs a multi-node cluster over real TCP loopback:
// one mining node seals blocks from a generated workload and broadcasts
// each over HTTP to validating followers, which replay the published
// (S, H) schedule before appending — the paper's miner/validator split
// across process-style boundaries. A late joiner then catch-up syncs the
// whole chain from the miner, exercising the wire path a second way.
//
// Usage:
//
//	clusterdemo [-followers 2] [-blocks 5] [-blocksize 50]
//	            [-engine speculative] [-kind token] [-conflict 15]
//	            [-workers 3] [-seed 2017]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"contractstm/internal/cluster"
	"contractstm/internal/engine"
	"contractstm/internal/node"
	"contractstm/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterdemo:", err)
		os.Exit(1)
	}
}

func parseKind(s string) (workload.Kind, error) {
	switch s {
	case "ballot":
		return workload.KindBallot, nil
	case "auction":
		return workload.KindAuction, nil
	case "etherdoc":
		return workload.KindEtherDoc, nil
	case "mixed":
		return workload.KindMixed, nil
	case "token":
		return workload.KindToken, nil
	case "delegation":
		return workload.KindDelegation, nil
	default:
		return 0, fmt.Errorf("unknown -kind %q", s)
	}
}

func run() error {
	var (
		followers = flag.Int("followers", 2, "validating follower nodes")
		blocks    = flag.Int("blocks", 5, "blocks to mine and propagate")
		blockSize = flag.Int("blocksize", 50, "transactions per block")
		engName   = flag.String("engine", "speculative", `execution engine: "serial", "speculative" or "occ"`)
		kindName  = flag.String("kind", "token", "workload: ballot, auction, etherdoc, mixed, token or delegation")
		conflict  = flag.Int("conflict", 15, "workload data-conflict percentage")
		workers   = flag.Int("workers", 3, "per-node mining/validation pool size")
		seed      = flag.Int64("seed", 2017, "workload generation seed")
	)
	flag.Parse()

	engKind, err := engine.ParseKind(*engName)
	if err != nil {
		return err
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		return err
	}
	if *followers < 1 {
		return fmt.Errorf("-followers must be >= 1")
	}

	params := workload.Params{
		Kind: kind, Transactions: *blocks * *blockSize,
		ConflictPercent: *conflict, Seed: *seed,
	}
	// Every node needs an identical genesis world; one extra copy feeds
	// the late joiner below.
	allWorlds, calls, err := cluster.GenerateWorlds(params, *followers+2)
	if err != nil {
		return err
	}
	worlds, lateWorld := allWorlds[:*followers+1], allWorlds[*followers+1]
	listen := make([]string, len(worlds))
	for i := range listen {
		listen[i] = "127.0.0.1:0"
	}
	cl, err := cluster.New(cluster.Config{
		Worlds: worlds, Engine: engKind, Workers: *workers, Listen: listen,
	})
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	if err != nil {
		return err
	}

	fmt.Printf("cluster: %d nodes over TCP (engine=%s, kind=%s, %d%% conflict)\n",
		cl.Len(), engKind, kind, *conflict)
	for i := 0; i < cl.Len(); i++ {
		role := "follower"
		if i == 0 {
			role = "miner"
		}
		fmt.Printf("  node %d  %-8s %s\n", i, role, cl.URL(i))
	}

	miner := cl.Node(0)
	miner.SubmitAll(calls)
	bcast := cl.Broadcaster(0)
	ctx := context.Background()

	start := time.Now()
	for b := 0; b < *blocks; b++ {
		blk, err := miner.MineOne(*blockSize)
		if err != nil {
			return fmt.Errorf("mine block %d: %w", b+1, err)
		}
		deliveries := bcast.Broadcast(ctx, blk)
		if failed := cluster.Failed(deliveries); len(failed) > 0 {
			return fmt.Errorf("broadcast block %d: %v", b+1, failed[0].Err)
		}
		fmt.Printf("block %d: %3d txs, %3d edges, hash %s → %d followers validated\n",
			blk.Header.Number, len(blk.Calls), len(blk.Schedule.Edges),
			blk.Header.Hash().Short(), len(deliveries))
	}
	elapsed := time.Since(start)

	if !cl.Converged() {
		return fmt.Errorf("cluster did not converge")
	}
	head := miner.Head().Header
	fmt.Printf("\nconverged: height %d, head %s, state root %s\n",
		head.Number, head.Hash().Short(), head.StateRoot.Short())
	fmt.Printf("throughput: %.1f blocks/s, %.1f txs/s end-to-end (%s)\n",
		float64(*blocks)/elapsed.Seconds(),
		float64(*blocks**blockSize)/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	// Late joiner: a fresh node catch-up syncs the whole chain from the
	// miner's wire API.
	late, err := node.New(node.Config{World: lateWorld, Workers: *workers, Engine: engKind})
	if err != nil {
		return err
	}
	imported, err := cluster.Sync(ctx, late, cluster.NewPeer(cl.URL(0), nil))
	if err != nil {
		return fmt.Errorf("late-joiner sync: %w", err)
	}
	lateHead := late.Head().Header
	if lateHead.Hash() != head.Hash() {
		return fmt.Errorf("late joiner head %s != miner %s", lateHead.Hash().Short(), head.Hash().Short())
	}
	fmt.Printf("late joiner: imported %d blocks by catch-up sync, head matches\n", imported)
	printStatuses(cl)
	return nil
}

func printStatuses(cl *cluster.Cluster) {
	fmt.Println("\nnode status:")
	for i := 0; i < cl.Len(); i++ {
		st := cl.Node(i).CurrentStatus()
		fmt.Printf("  node %d: height=%d mined=%d validated=%d engine=%s\n",
			i, st.Height, st.MinedBlocks, st.ValidatedBlocks, st.Engine)
	}
}
